"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro figures fig9
    python -m repro transfer --setup EU2US --transport data --size-mb 96 --runs 3
    python -m repro latency --setup EU2AU --data-transport udt
    python -m repro learn --value-function approx --duration 60
    python -m repro faults --cut-at 3 --cut-duration 2
    python -m repro chaos --seed 3 --events 5
    python -m repro setups
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro._version import __version__
from repro.bench import AWS_SETUPS, setup_by_name
from repro.bench.harness import (
    run_latency_experiment,
    run_learner_trace,
    run_static_reference,
    run_transfer_repeated,
)
from repro.bench.report import format_table
from repro.core import TDRatioLearner
from repro.messaging import Transport

MB = 1024 * 1024

FIGURES = ("fig1", "fig2", "fig4", "fig5", "fig6", "fig8", "fig9")


def _transport(name: str) -> Transport:
    try:
        return Transport(name.lower())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown transport {name!r}; choose from "
            f"{[t.value for t in Transport]}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KompicsMessaging reproduction (ICDCS 2017) experiment runner",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("setups", help="list the simulated testbed setups")

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", nargs="*", default=["all"],
                         help=f"figures to run: {', '.join(FIGURES)} or 'all'")

    transfer = sub.add_parser("transfer", help="repeated disk-to-disk transfer")
    transfer.add_argument("--setup", default="EU2US", help="testbed setup name")
    transfer.add_argument("--transport", type=_transport, default=Transport.DATA)
    transfer.add_argument("--size-mb", type=int, default=395)
    transfer.add_argument("--runs", type=int, default=5)
    transfer.add_argument("--seed", type=int, default=1)

    latency = sub.add_parser("latency", help="ping RTT with optional parallel data")
    latency.add_argument("--setup", default="EU2AU")
    latency.add_argument("--ping-transport", type=_transport, default=Transport.TCP)
    latency.add_argument("--data-transport", type=_transport, default=None)
    latency.add_argument("--transfer-mb", type=int, default=395)
    latency.add_argument("--seed", type=int, default=2)

    learn = sub.add_parser("learn", help="watch the ratio learner converge")
    learn.add_argument("--value-function", choices=("matrix", "model", "approx"),
                       default="approx")
    learn.add_argument("--duration", type=float, default=120.0)
    learn.add_argument("--seed", type=int, default=4)

    obs = sub.add_parser(
        "obs",
        help="run an instrumented ping-pong + DATA scenario and dump metrics",
    )
    obs.add_argument("--setup", default=None,
                     help="testbed setup name (default: the learner environment)")
    obs.add_argument("--duration", type=float, default=10.0,
                     help="simulated seconds to run")
    obs.add_argument("--seed", type=int, default=3)
    obs.add_argument("--format", choices=("json", "lines"), default="json",
                     help="snapshot format: full JSON or flat line protocol")
    obs.add_argument("--output", default=None,
                     help="write the snapshot to this file instead of stdout")
    obs.add_argument("--trace", action="store_true",
                     help="include trace records in the JSON snapshot")

    loopback = sub.add_parser(
        "loopback",
        help="run the fig9-style workload on REAL loopback sockets and "
             "compare against the netsim prediction",
    )
    loopback.add_argument("--size-mb", type=float, default=2.0,
                          help="dataset size per transport")
    loopback.add_argument("--transports", default=None,
                          help="comma-separated transports "
                               "(default: tcp,udt,data)")
    loopback.add_argument("--seed", type=int, default=3)
    loopback.add_argument("--timeout", type=float, default=120.0,
                          help="wall-clock deadline per transport run")
    loopback.add_argument("--no-sim", action="store_true",
                          help="skip the netsim prediction column")
    loopback.add_argument("--format", choices=("table", "json"), default="table",
                          help="human table or the JSON document")
    loopback.add_argument("--output", default=None,
                          help="write the output to this file instead of stdout")

    faults = sub.add_parser(
        "faults",
        help="scripted fault campaign (cut/degrade/restore) with recovery metrics",
    )
    faults.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds to run")
    faults.add_argument("--cut-at", type=float, default=3.0,
                        help="when to cut the link (sim seconds)")
    faults.add_argument("--cut-duration", type=float, default=2.0,
                        help="how long the link stays down")
    faults.add_argument("--degrade-at", type=float, default=None,
                        help="optionally degrade the link at this time")
    faults.add_argument("--transfer-mb", type=int, default=8,
                        help="parallel file-transfer size")
    faults.add_argument("--transport", type=_transport, default=Transport.TCP,
                        help="transfer transport (pings always use TCP)")
    faults.add_argument("--seed", type=int, default=5)
    faults.add_argument("--no-recovery", action="store_true",
                        help="run the bare middleware (today's loss behaviour)")
    faults.add_argument("--fallback", action="store_true",
                        help="enable degrade-to-TCP transport fallback")
    faults.add_argument("--jitter", type=float, default=None,
                        help="override messaging.reconnect.jitter")
    faults.add_argument("--format", choices=("summary", "json"), default="summary",
                        help="human summary or the full obs snapshot document")
    faults.add_argument("--output", default=None,
                        help="write the output to this file instead of stdout")

    chaos = sub.add_parser(
        "chaos",
        help="seeded random fault campaign (handler faults + link cuts) "
             "under component supervision",
    )
    chaos.add_argument("--backend", choices=("sim", "aio"), default="sim",
                       help="sim: netsim testbed campaign; aio: kill/restart a "
                            "live real-socket AioNetwork mid-transfer")
    chaos.add_argument("--restarts", type=int, default=2,
                       help="[aio] planned supervised kills of the sender network")
    chaos.add_argument("--redelivery", choices=("at-most-once", "at-least-once"),
                       default="at-most-once",
                       help="[aio] messaging.aio.redelivery contract across restarts")
    chaos.add_argument("--size-mb", type=float, default=1.0,
                       help="[aio] transfer size in MB")
    chaos.add_argument("--drop", type=float, default=0.0,
                       help="[aio] seeded UDT packet-drop probability on top of kills")
    chaos.add_argument("--duration", type=float, default=20.0,
                       help="simulated seconds to run")
    chaos.add_argument("--events", type=int, default=5,
                       help="how many chaos events to draw")
    chaos.add_argument("--chaos-start", type=float, default=2.0,
                       help="earliest chaos event (sim seconds)")
    chaos.add_argument("--chaos-end", type=float, default=10.0,
                       help="latest chaos event (sim seconds)")
    chaos.add_argument("--tail", type=float, default=3.0,
                       help="chaos-free convergence window at the end")
    chaos.add_argument("--targets", default=None,
                       help="comma-separated fault targets "
                            "(pinger,ponger,sender,receiver,net-snd,net-rcv)")
    chaos.add_argument("--transfer-mb", type=int, default=4,
                       help="parallel file-transfer size")
    chaos.add_argument("--transport", type=_transport, default=Transport.TCP,
                       help="transfer transport (pings always use TCP)")
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument("--max-restarts", type=int, default=10,
                       help="supervision restart budget per window")
    chaos.add_argument("--format", choices=("summary", "json"), default="summary",
                       help="human summary or the full obs snapshot document")
    chaos.add_argument("--output", default=None,
                       help="write the output to this file instead of stdout")

    perf = sub.add_parser(
        "perf",
        help="hot-path perf suites, baseline regression gate, equivalence gate",
    )
    perf.add_argument("--suite", action="append", default=None,
                      help="suite to run (repeatable); default: all")
    perf.add_argument("--quick", action="store_true",
                      help="smaller workloads for CI smoke runs")
    perf.add_argument("--out", default=None,
                      help="write the result document (JSON) to this file")
    perf.add_argument("--baseline", default=None,
                      help="baseline JSON (e.g. BENCH_PR3.json) to gate against")
    perf.add_argument("--max-regression", type=float, default=0.30,
                      help="allowed fractional drop in gated rate metrics")
    perf.add_argument("--equivalence", action="store_true",
                      help="run the fastpath-on vs. off snapshot equivalence gate "
                           "instead of the measurement suites")
    perf.add_argument("--profile", action="store_true",
                      help="run the suites under cProfile and print the top "
                           "functions by cumulative time (no gating)")
    perf.add_argument("--profile-top", type=int, default=25, metavar="N",
                      help="rows per suite in the --profile report")
    perf.add_argument("--summary", default=None, metavar="PATH",
                      help="append a markdown measured-vs-baseline table to this "
                           "file (e.g. $GITHUB_STEP_SUMMARY); needs --baseline")

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale topologies and parallel seeds x scenarios campaigns",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_action", required=True)

    fleet_sub.add_parser("list", help="list registered scenarios by kind")

    fleet_run = fleet_sub.add_parser(
        "run", help="run one fleet workload campaign across seeds",
    )
    fleet_run.add_argument("--topology", default="star",
                           choices=("star", "fat-tree", "wan-mesh"),
                           help="generated topology family")
    fleet_run.add_argument("--hosts", type=int, default=32,
                           help="leaf host count (switches/routers are extra)")
    fleet_run.add_argument("--flows", type=int, default=200,
                           help="concurrent flows per seeded run")
    fleet_run.add_argument("--pattern", default="uniform",
                           choices=("uniform", "incast", "churn"),
                           help="traffic pattern (arrival/departure shape)")
    fleet_run.add_argument("--horizon", type=float, default=120.0,
                           help="simulated-seconds cap per run")
    fleet_run.add_argument("--seeds", type=int, default=4,
                           help="how many seeded runs to fan out")
    fleet_run.add_argument("--seed-base", type=int, default=0,
                           help="first seed; runs use seed-base..seed-base+seeds-1")
    fleet_run.add_argument("--workers", type=int, default=1,
                           help="process-pool width (1 = run inline)")
    fleet_run.add_argument("--out", default=None,
                           help="write the campaign document (JSON) to this file")
    fleet_run.add_argument("--format", choices=("summary", "json"),
                           default="summary",
                           help="stdout format: human summary or the document")

    fleet_sweep = fleet_sub.add_parser(
        "sweep", help="run any registered scenarios x seeds as one campaign",
    )
    fleet_sweep.add_argument("--scenario", action="append", required=True,
                             metavar="NAME",
                             help="scenario to include (repeatable); see "
                                  "'fleet list'")
    fleet_sweep.add_argument("--seeds", type=int, default=4)
    fleet_sweep.add_argument("--seed-base", type=int, default=0)
    fleet_sweep.add_argument("--workers", type=int, default=1)
    fleet_sweep.add_argument("--out", default=None,
                             help="write the campaign document (JSON) to this file")
    fleet_sweep.add_argument("--format", choices=("summary", "json"),
                             default="summary")

    cc = sub.add_parser(
        "cc",
        help="pluggable congestion-control policies (the netsim/aio registry)",
    )
    cc_sub = cc.add_subparsers(dest="cc_action", required=True)
    cc_sub.add_parser("list", help="list registered policies and aio pacers")

    check = sub.add_parser(
        "check",
        help="runtime invariant checker, trace digests, divergence bisection",
    )
    check.add_argument("action", nargs="?", default="run",
                       choices=("run", "compare", "bisect", "mutate"),
                       help="run: workload with invariants on; compare: digest "
                            "fastpath on vs. off; bisect: name the first "
                            "divergent event; mutate: seeded-violation self-test")
    check.add_argument("--mutate", action="store_true",
                       help="alias for the 'mutate' action")
    check.add_argument("--workload", default="transfer",
                       help="check workload: fig8, transfer or obs")
    check.add_argument("--size-mb", type=float, default=4.0,
                       help="transfer size for fig8/transfer workloads")
    check.add_argument("--duration", type=float, default=4.0,
                       help="sim duration for the obs workload")
    check.add_argument("--seed", type=int, default=3)
    check.add_argument("--streams", default=None,
                       help="comma-separated digest streams to compare/bisect "
                            "(default: every stream except 'sim', whose raw "
                            "heap pops legitimately differ across fast paths)")
    check.add_argument("--perturb", type=int, default=None, metavar="N",
                       help="arm the seeded RX-train swap on the Nth eligible "
                            "append (fast-path fault for the bisect demo)")
    check.add_argument("--strict", action="store_true",
                       help="raise on the first violation instead of collecting")
    check.add_argument("--checkpoint-every", type=int, default=None,
                       help="digest checkpoint interval in events")
    check.add_argument("--output", default=None,
                       help="write the checker document (JSON) to this file")

    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_setups(args: argparse.Namespace) -> int:
    rows = [
        (
            s.name,
            f"{s.rtt * 1000:.0f}ms",
            f"{s.bandwidth / MB:.0f}MB/s",
            f"{s.loss:.0e}" if s.loss else "0",
            f"{s.udp_cap / MB:.0f}MB/s" if s.udp_cap else "-",
            "loopback" if s.local else "point-to-point",
        )
        for s in AWS_SETUPS
    ]
    print(format_table(
        ("setup", "RTT", "bandwidth", "loss", "UDP cap", "kind"), rows,
        title="Simulated testbed setups (paper Figure 7)",
    ))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import figures as figmod

    wanted = list(args.which)
    if "all" in wanted:
        wanted = list(FIGURES)
    unknown = [w for w in wanted if w not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {unknown}; choose from {FIGURES}", file=sys.stderr)
        return 2
    runners = {
        "fig1": lambda: figmod.fig1_selection_skew(),
        "fig2": lambda: figmod.fig2_psp_convergence()[0],
        "fig4": lambda: figmod.fig4_matrix_q()[0],
        "fig5": lambda: figmod.fig5_model_based()[0],
        "fig6": lambda: figmod.fig6_approximation()[0],
        "fig8": lambda: figmod.fig8_latency()[0],
        "fig9": lambda: figmod.fig9_throughput()[0],
    }
    for name in wanted:
        print(runners[name]().render())
        print()
    return 0


def cmd_transfer(args: argparse.Namespace) -> int:
    setup = setup_by_name(args.setup)
    rep = run_transfer_repeated(
        setup, args.transport, args.size_mb * MB,
        min_runs=args.runs, max_runs=args.runs, base_seed=args.seed,
    )
    rows = [(i + 1, f"{args.size_mb * MB / d / MB:8.2f}", f"{d:8.2f}")
            for i, d in enumerate(rep.durations)]
    print(format_table(
        ("run", "MB/s", "seconds"), rows,
        title=f"{args.size_mb} MB over {args.transport.value} on {setup.name}",
    ))
    ci = rep.confidence_interval()
    print(f"mean {rep.mean_throughput / MB:.2f} MB/s ± {ci.half_width / MB:.2f} (95% CI)")
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    setup = setup_by_name(args.setup)
    result = run_latency_experiment(
        setup, args.ping_transport, args.data_transport,
        seed=args.seed, transfer_bytes=args.transfer_mb * MB,
    )
    print(f"{result.combo} on {setup.name}: median {result.median_ms:.2f} ms, "
          f"mean {result.mean_ms:.2f} ms over {len(result.rtts_ms)} pings")
    return 0


def cmd_learn(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    kind = args.value_function
    trace = run_learner_trace(
        kind,
        prp_factory=lambda: TDRatioLearner(rng, kind),
        duration=args.duration,
        seed=args.seed,
    )
    tcp = run_static_reference(Transport.TCP, duration=args.duration, seed=args.seed)
    rows = []
    for t in range(10, int(args.duration) + 1, 10):
        thr = (trace.throughput.window_mean(t - 10, t) or 0.0) / MB
        ratio = trace.ratio_true.window_mean(t - 10, t)
        ref = (tcp.throughput.window_mean(t - 10, t) or 0.0) / MB
        rows.append((f"{t}s", f"{thr:7.2f}", "n/a" if ratio is None else f"{ratio:+5.2f}",
                     f"{ref:7.2f}"))
    print(format_table(
        ("time", "learner MB/s", "true ratio", "TCP ref MB/s"), rows,
        title=f"TD learner ({kind}) on a TCP-favouring link",
    ))
    from repro.bench.report import sparkline

    per_episode = trace.throughput.values
    print(f"throughput/episode: {sparkline(per_episode, low=0.0)}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.bench.harness import LEARNER_ENV, run_observability_demo, run_observed

    setup = LEARNER_ENV if args.setup is None else setup_by_name(args.setup)
    summary, document = run_observed(
        run_observability_demo, setup=setup, duration=args.duration, seed=args.seed,
        meta={"setup": setup.name, "duration": args.duration, "seed": args.seed},
    )
    document["meta"]["summary"] = summary
    if not args.trace:
        document.pop("trace", None)

    if args.format == "json":
        from repro.obs.export import _json_default, _sanitize

        text = json.dumps(
            _sanitize(document), indent=2, sort_keys=True, default=_json_default
        )
    else:
        text = "\n".join(_document_lines(document["metrics"]))

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} snapshot to {args.output}")
    else:
        print(text)
    return 0


def cmd_loopback(args: argparse.Namespace) -> int:
    import json

    from repro.bench.loopback import (
        DEFAULT_TRANSPORTS,
        format_comparison,
        run_loopback_comparison,
    )

    transports = (
        DEFAULT_TRANSPORTS
        if args.transports is None
        else tuple(_transport(t.strip()) for t in args.transports.split(",") if t.strip())
    )
    comparison = run_loopback_comparison(
        transports, size=int(args.size_mb * MB), seed=args.seed,
        sim=not args.no_sim, timeout=args.timeout,
    )

    if args.format == "json":
        text = json.dumps(comparison.to_document(), indent=2, sort_keys=True)
    else:
        text = format_comparison(comparison)

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} output to {args.output}")
    else:
        print(text)

    incomplete = [r.transport for r in comparison.runs if not r.complete]
    if incomplete:
        print(f"loopback run(s) incomplete: {', '.join(incomplete)}", file=sys.stderr)
        return 1
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.bench.harness import run_observed
    from repro.bench.scenario import run_scenario

    reconnect = {} if args.jitter is None else {"jitter": args.jitter}
    result, document = run_observed(
        run_scenario,
        "faults",
        duration=args.duration,
        cut_at=args.cut_at,
        cut_duration=args.cut_duration,
        degrade_at=args.degrade_at,
        transfer_bytes=args.transfer_mb * MB,
        transfer_transport=args.transport,
        seed=args.seed,
        recovery=not args.no_recovery,
        fallback=args.fallback,
        reconnect=reconnect,
        meta={"driver": "run_fault_campaign",
              "seed": args.seed, "duration": args.duration},
    )

    if args.format == "json":
        from repro.obs.export import _json_default, _sanitize

        document["meta"]["summary"] = dataclasses.asdict(result)
        text = json.dumps(
            _sanitize(document), indent=2, sort_keys=True, default=_json_default
        )
    else:
        mode = "bare (no recovery)" if args.no_recovery else "recovery on"
        lines = [
            f"fault campaign on {result.setup} ({mode}): "
            f"link cut at {result.cut_at:.1f}s for {result.cut_duration:.1f}s",
            f"  pings           {result.pings_answered}/{result.pings_sent} answered "
            f"({result.ping_loss} lost)",
            f"  transfer        {result.transfer_progress:.1%} of "
            f"{result.transfer_bytes // MB} MB"
            + (" (complete)" if result.transfer_done else ""),
            f"  reconnects      {result.reconnect_attempts} attempt(s), "
            f"{result.reconnect_recovered} recovered, {result.reconnect_giveups} gave up",
            f"  fallbacks       {result.fallback_activations}",
        ]
        if result.backoff_delays:
            delays = ", ".join(f"{d:.3f}" for d in result.backoff_delays)
            lines.append(f"  backoff (s)     {delays}")
        if not result.converged:
            lines.append("  converged       NO")
        text = "\n".join(lines)

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} output to {args.output}")
    else:
        print(text)
    # Bare runs demonstrate the unrecovered floor and are allowed to lose
    # the transfer; with recovery on, non-convergence is a failure.
    return 0 if (args.no_recovery or result.converged) else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.bench.chaos import DEFAULT_TARGETS
    from repro.bench.harness import run_observed
    from repro.bench.scenario import run_scenario

    if args.backend == "aio":
        return _cmd_chaos_aio(args)

    targets = (
        DEFAULT_TARGETS if args.targets is None
        else tuple(t.strip() for t in args.targets.split(",") if t.strip())
    )
    result, document = run_observed(
        run_scenario,
        "chaos",
        duration=args.duration,
        chaos_start=args.chaos_start,
        chaos_end=args.chaos_end,
        events=args.events,
        targets=targets,
        tail=args.tail,
        transfer_bytes=args.transfer_mb * MB,
        transfer_transport=args.transport,
        seed=args.seed,
        max_restarts=args.max_restarts,
        meta={"driver": "run_chaos_campaign",
              "seed": args.seed, "duration": args.duration, "events": args.events},
    )

    if args.format == "json":
        from repro.obs.export import _json_default, _sanitize

        document["meta"]["summary"] = dataclasses.asdict(result)
        text = json.dumps(
            _sanitize(document), indent=2, sort_keys=True, default=_json_default
        )
    else:
        lines = [
            f"chaos campaign on {result.setup} (seed {result.seed}): "
            f"{result.faults_injected} fault(s), {result.link_cuts} link cut(s)",
        ]
        for event in result.timeline:
            detail = f" for {event.duration:.2f}s" if event.kind == "link_cut" else ""
            lines.append(f"  {event.time:7.3f}s  {event.kind:16s} {event.target}{detail}")
        lines += [
            f"  supervision     {result.restarts} restart(s), "
            f"{result.escalations} escalation(s), {result.destroys} destroy(s)",
            f"  dead letters    {result.deadletters}",
            f"  pings           {result.pings_answered}/{result.pings_sent} answered, "
            f"{result.pings_answered_in_tail} in the convergence tail",
            f"  transfer        {result.transfer_progress:.1%} of "
            f"{result.transfer_bytes // MB} MB"
            + (" (complete)" if result.transfer_done else ""),
            f"  reconnects      {result.reconnect_attempts} attempt(s), "
            f"{result.reconnect_recovered} recovered",
            f"  converged       {'yes' if result.healthy_at_end else 'NO'}",
        ]
        text = "\n".join(lines)

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} output to {args.output}")
    else:
        print(text)
    return 0 if result.healthy_at_end else 1


def _cmd_chaos_aio(args: argparse.Namespace) -> int:
    """``repro chaos --backend aio``: real-socket kill/restart campaign."""
    import json

    from repro.bench.chaos import run_aio_chaos_campaign

    result = run_aio_chaos_campaign(
        transport=args.transport,
        size=int(args.size_mb * MB),
        seed=args.seed,
        restarts=args.restarts,
        redelivery=args.redelivery,
        drop=args.drop,
        max_restarts=args.max_restarts,
    )
    document = result.to_document()

    if args.format == "json":
        text = json.dumps(document, indent=2, sort_keys=True)
    else:
        lines = [
            f"aio chaos campaign ({result.transport}, {result.redelivery}, "
            f"seed {result.seed}): {result.restarts_done}/{result.restarts_planned} "
            f"supervised restart(s) at chunk(s) {list(result.kill_points)}",
            f"  epochs          {list(result.epochs)}"
            + ("" if result.epochs_monotone else "  NOT MONOTONE"),
            f"  notifies        {result.ok} ok / {result.failed} failed / "
            f"{result.leaked} leaked of {result.requested}",
            f"  delivered       {result.delivered_unique}/{result.chunks} unique, "
            f"{result.duplicates_delivered} duplicate(s), "
            f"{result.dups_suppressed} suppressed by the dedup window",
            f"  redelivery      {result.requeued} frame(s) requeued across restarts",
            f"  dead letters    {result.deadletters}",
            f"  invariants      {'ok' if result.check_ok else 'VIOLATED'}"
            + ("" if result.check_ok else "\n    " + "\n    ".join(result.violations)),
            f"  converged       {'yes' if result.converged else 'NO'}",
        ]
        text = "\n".join(lines)

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} output to {args.output}")
    else:
        print(text)
    return 0 if result.converged else 1


def cmd_perf(args: argparse.Namespace) -> int:
    import json

    from repro.bench.perf import check_regression, run_equivalence, run_perf

    if args.profile:
        from repro.bench.perf import run_profile

        try:
            report = run_profile(
                suites=args.suite, quick=args.quick, top=args.profile_top,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report)
            print(f"wrote profile report to {args.out}")
        else:
            print(report)
        return 0

    if args.equivalence:
        outcomes = run_equivalence(quick=args.quick)
        width = max(len(name) for name, _ in outcomes)
        for name, identical in outcomes:
            print(f"{name:<{width}}  {'IDENTICAL' if identical else 'DIFFER'}")
        bad = [name for name, identical in outcomes if not identical]
        if bad:
            print(f"equivalence gate FAILED: {', '.join(bad)}", file=sys.stderr)
            return 1
        print("equivalence gate passed: fast paths are observationally identical")
        return 0

    try:
        document = run_perf(suites=args.suite, quick=args.quick)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    for suite, metrics in document["suites"].items():
        parts = ", ".join(
            f"{k}={v:,.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in metrics.items()
        )
        print(f"{suite}: {parts}")

    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote perf document to {args.out}")

    if args.baseline is not None:
        from repro.bench.perf import regression_report

        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_regression(document, baseline, args.max_regression)
        if args.summary is not None:
            with open(args.summary, "a", encoding="utf-8") as fh:
                fh.write(regression_report(document, baseline, args.max_regression))
        if failures:
            for line in failures:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"regression gate passed (threshold {args.max_regression:.0%} "
              f"vs {args.baseline})")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.bench.fleet import (
        campaign_json,
        plan_campaign,
        run_campaign,
        validate_campaign_document,
    )
    from repro.bench.scenario import SCENARIOS, UnknownScenarioError, get_scenario

    if args.fleet_action == "list":
        scenarios = SCENARIOS.all()
        width = max(len(s.name) for s in scenarios)
        for scenario in scenarios:
            print(f"{scenario.name:<{width}}  [{scenario.kind}] "
                  f"{scenario.description}")
        return 0

    if args.fleet_action == "run":
        entries = [("fleet", {
            "topology": args.topology,
            "hosts": args.hosts,
            "flows": args.flows,
            "pattern": args.pattern,
            "horizon": args.horizon,
        })]
    else:  # sweep
        try:
            for name in args.scenario:
                get_scenario(name)
        except UnknownScenarioError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        entries = [(name, None) for name in args.scenario]

    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    units = plan_campaign(entries, seeds)
    document = run_campaign(units, workers=args.workers)
    problems = validate_campaign_document(document)
    if problems:  # internal invariant, should never fire
        for problem in problems:
            print(f"INVALID CAMPAIGN DOCUMENT: {problem}", file=sys.stderr)
        return 1

    text = campaign_json(document)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote campaign document to {args.out}")

    merged = document["merged"]
    if args.format == "json":
        print(text, end="")
    else:
        totals = merged["totals"]
        print(f"campaign: {totals['ok']}/{totals['units']} unit(s) ok, "
              f"{totals['failed']} failed, workers={args.workers}")
        print(f"merged digest: {merged['digest']}")
        for name, bucket in merged["scenarios"].items():
            print(f"  {name}: ok={bucket['units_ok']} "
                  f"failed={bucket['units_failed']}")
            for counter, value in bucket["counters"].items():
                print(f"    {counter:<20} {value:,.0f}")
            for stat, state in bucket["stats"].items():
                if not state["count"]:
                    continue
                mean = state["mean"]
                print(f"    {stat:<20} n={state['count']} mean={mean:,.4g} "
                      f"min={state['min']:,.4g} max={state['max']:,.4g}")
    return 0 if merged["totals"]["failed"] == 0 else 1


def cmd_cc(args: argparse.Namespace) -> int:
    from repro.aio.pacing import PACERS
    from repro.netsim.congestion import CC_POLICIES

    policies = CC_POLICIES.all()
    width = max(len(p.name) for p in policies)
    print("netsim congestion-control policies (connect(..., cc=NAME)):")
    for policy in policies:
        pacer = "aio" if policy.name in PACERS else "-"
        print(f"  {policy.name:<{width}}  [{pacer:>3}] {policy.description}")
    aio_only = sorted(set(PACERS) - {p.name for p in policies})
    for name in aio_only:  # pragma: no cover - registries currently align
        print(f"  {name:<{width}}  [aio] (real-socket pacer only)")
    print("\n[aio] marks names also usable as messaging.aio.cc pacing policies.")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    import json
    from contextlib import ExitStack

    from repro import fastpath
    from repro.check import DEFAULT_CHECKPOINT_EVERY, checking
    from repro.check import perturb as check_perturb
    from repro.check.bisection import bisect_divergence, compare_documents

    action = "mutate" if args.mutate else args.action
    every = args.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    streams = args.streams.split(",") if args.streams else None

    if action == "mutate":
        from repro.check.selftest import run_selftest

        results = run_selftest()
        width = max(len(r.scenario) for r in results)
        missed = [r for r in results if not r.caught]
        for r in results:
            status = "CAUGHT" if r.caught else "MISSED"
            print(f"{r.scenario:<{width}}  {r.invariant:<18} {status} "
                  f"({r.violations} violation(s))")
        if missed:
            print(f"mutation self-test FAILED: "
                  f"{', '.join(r.scenario for r in missed)} not caught",
                  file=sys.stderr)
            return 1
        print("mutation self-test passed: every seeded violation was caught")
        return 0

    from repro.check.workloads import run_workload

    def run_once(capture=None, fast=True, perturbed=False):
        with ExitStack() as stack:
            if perturbed and args.perturb is not None:
                stack.enter_context(check_perturb.rx_swap(at=args.perturb))
            if not fast:
                stack.enter_context(fastpath.disabled())
            chk = stack.enter_context(
                checking(strict=args.strict, checkpoint_every=every,
                         capture=capture)
            )
            run_workload(args.workload, size_mb=args.size_mb,
                         duration=args.duration, seed=args.seed)
        return chk.document()

    if action == "run":
        doc = run_once(perturbed=True)
        for name, stream in doc["streams"].items():
            print(f"stream {name:<8} events={stream['count']:>8} "
                  f"digest={stream['digest']} "
                  f"checkpoints={len(stream['checkpoints'])}")
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote checker document to {args.output}")
        violations = doc["violations"]
        if violations:
            for v in violations:
                detail = " ".join(f"{k}={val}" for k, val in v["fields"].items())
                print(f"VIOLATION [{v['invariant']}] {v['message']} ({detail})",
                      file=sys.stderr)
            print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
            return 1
        print("invariants held: no violations")
        return 0

    if action == "compare":
        doc_a = run_once(fast=True, perturbed=True)
        doc_b = run_once(fast=False)
        divergences = compare_documents(doc_a, doc_b, streams)
        names = streams or sorted(
            (set(doc_a["streams"]) | set(doc_b["streams"])) - {"sim"}
        )
        diverged = {d.stream for d in divergences}
        for name in names:
            print(f"stream {name:<8} "
                  f"{'DIVERGED' if name in diverged else 'IDENTICAL'}")
        for d in divergences:
            print(f"  '{d.stream}' first diverges in events "
                  f"{d.window[0] + 1}..{d.window[1]}", file=sys.stderr)
        if divergences:
            print("configurations diverge (use 'check bisect' to name the "
                  "first event)", file=sys.stderr)
            return 1
        print("configurations identical on the compared streams")
        return 0

    # action == "bisect"
    def run_pair(capture):
        return (
            run_once(capture=capture, fast=True, perturbed=True),
            run_once(capture=capture, fast=False),
        )

    report = bisect_divergence(run_pair, streams)
    print(report.format())
    return 0 if report.identical else 1


def _document_lines(metrics: dict) -> List[str]:
    """Flat ``name{labels} value`` lines from a snapshot's metrics section."""
    import math

    lines: List[str] = []
    for name, entries in sorted(metrics.items()):
        for entry in entries:
            labels = entry["labels"]
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels else ""
            )
            if entry["type"] in ("counter", "gauge"):
                lines.append(f"{name}{label_text} {entry['value']}")
                continue
            for stat in ("count", "mean", "p50", "p90", "p99", "min", "max"):
                value = entry[stat]
                if isinstance(value, float) and math.isnan(value):
                    continue
                lines.append(f"{name}.{stat}{label_text} {value}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "setups": cmd_setups,
        "figures": cmd_figures,
        "transfer": cmd_transfer,
        "latency": cmd_latency,
        "learn": cmd_learn,
        "obs": cmd_obs,
        "loopback": cmd_loopback,
        "faults": cmd_faults,
        "chaos": cmd_chaos,
        "perf": cmd_perf,
        "fleet": cmd_fleet,
        "cc": cmd_cc,
        "check": cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
