"""KompicsMessaging reproduction: fast and flexible networking for
message-oriented middleware (Kroll, Ormenișan, Dowling — ICDCS 2017).

Subpackages
-----------
``repro.sim``        deterministic discrete-event kernel
``repro.netsim``     simulated links, transports (TCP/UDT/UDP/LEDBAT), hosts
``repro.kompics``    the Kompics component model (ports, channels, scheduler)
``repro.messaging``  the middleware layer (per-message transports, vnodes)
``repro.core``       adaptive transport selection (the paper's contribution)
``repro.apps``       evaluation workloads (file transfer, ping/pong)
``repro.aio``        real asyncio backend (TCP, UDP, UDT-lite)
``repro.bench``      experiment harness regenerating the paper's figures
``repro.stats``      streaming statistics, confidence intervals

The most common entry points are re-exported here.
"""

from repro._version import __version__
from repro.kompics import ComponentDefinition, KompicsSystem
from repro.messaging import (
    BasicAddress,
    BasicHeader,
    DataHeader,
    MessageNotify,
    Msg,
    NettyNetwork,
    Network,
    Transport,
)
from repro.netsim import LinkSpec, SimNetwork
from repro.sim import Simulator

__all__ = [
    "__version__",
    "Simulator",
    "SimNetwork",
    "LinkSpec",
    "KompicsSystem",
    "ComponentDefinition",
    "Network",
    "NettyNetwork",
    "Msg",
    "MessageNotify",
    "Transport",
    "BasicAddress",
    "BasicHeader",
    "DataHeader",
]
