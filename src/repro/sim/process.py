"""Generator-based simulation processes (SimPy-style sugar).

Callback scheduling (the kernel's native style) gets unwieldy for
sequential logic; a *process* writes it linearly instead::

    def worker(env: ProcessEnv):
        yield env.sleep(1.0)              # advance simulated time
        result = yield env.wait(signal)   # block on a Signal
        env.log.append((env.now, result))

    run_process(sim, worker)

Yield values:

* ``env.sleep(dt)`` — resume after ``dt`` simulated seconds;
* ``env.wait(signal)`` — resume when the signal fires, receiving its value;
* another process handle — resume when that process finishes.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.obs import get_tracer
from repro.sim.simulator import Simulator


class Signal:
    """A one-shot or repeating wake-up source for processes."""

    def __init__(self) -> None:
        self._waiters: List[Callable[[Any], None]] = []
        self.fired = 0

    def fire(self, value: Any = None) -> int:
        """Wake every currently waiting process; returns how many."""
        waiters, self._waiters = self._waiters, []
        self.fired += 1
        for waiter in waiters:
            waiter(value)
        return len(waiters)

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)


class _Sleep:
    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay


class _Wait:
    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal


class Process:
    """A running generator process; itself awaitable by other processes."""

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        # Event labels only aid tracing/diagnostics; skip the f-string per
        # schedule when tracing is off, and build it once when it is on.
        self._label = f"proc:{self.name}" if get_tracer().enabled else ""
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_signal = Signal()

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self.sim.schedule(0.0, lambda: self._step(None), label=self._label)

    def _step(self, value: Any) -> None:
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self._finish(error=exc)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, _Sleep):
            self.sim.schedule(yielded.delay, lambda: self._step(None), label=self._label)
        elif isinstance(yielded, _Wait):
            yielded.signal._add_waiter(lambda v: self._step(v))
        elif isinstance(yielded, Process):
            if yielded.finished:
                self.sim.schedule(0.0, lambda: self._step(yielded.result))
            else:
                yielded._done_signal._add_waiter(lambda v: self._step(v))
        else:
            self._finish(error=SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected "
                f"env.sleep(...), env.wait(...), or another process"
            ))

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.error = error
        self._done_signal.fire(result)
        if error is not None:
            raise error


class ProcessEnv:
    """What a process body sees: the clock and the yieldable factories."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    @property
    def now(self) -> float:
        return self.sim.now

    @staticmethod
    def sleep(delay: float) -> _Sleep:
        if delay < 0:
            raise ValueError("cannot sleep a negative duration")
        return _Sleep(delay)

    @staticmethod
    def wait(signal: Signal) -> _Wait:
        return _Wait(signal)

    def spawn(self, body: Callable[["ProcessEnv"], Generator], name: str = "") -> Process:
        """Start a child process."""
        return run_process(self.sim, body, name=name, env=self)


def run_process(
    sim: Simulator,
    body: Callable[[ProcessEnv], Generator],
    name: str = "",
    env: Optional[ProcessEnv] = None,
) -> Process:
    """Start ``body`` as a simulation process; returns its handle."""
    env = env if env is not None else ProcessEnv(sim)
    process = Process(sim, body(env), name=name or body.__name__)
    process._start()
    return process
