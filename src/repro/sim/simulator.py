"""The discrete-event simulator.

Design notes
------------
* Events with equal timestamps fire in scheduling order (deterministic).
* The kernel owns a :class:`SimulatedClock`; user code reads it but never
  advances it.
* ``max_events`` guards against runaway zero-delay loops; hitting it raises
  :class:`~repro.errors.SimulationError` instead of hanging.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import EventHandle
from repro.util.clock import SimulatedClock


class Simulator:
    """Deterministic discrete-event simulation kernel.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulatedClock(start_time)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SchedulingError(f"cannot schedule at {time} < now {self.now}")
        handle = EventHandle(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; return False when none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock._advance_to(handle.time)
            self.events_executed += 1
            handle.callback()
            return True
        return False

    def run(self, max_events: int = 100_000_000) -> None:
        """Run until the event queue drains (or ``stop`` is called)."""
        self._run(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: int = 100_000_000) -> None:
        """Run events with ``time <= until``; the clock ends at ``until``.

        Events scheduled after ``until`` remain queued, so simulation can be
        resumed with further ``run*`` calls.
        """
        self._run(until=until, max_events=max_events)
        if self.now < until:
            self.clock._advance_to(until)

    def stop(self) -> None:
        """Stop the current ``run*`` call after the in-flight event."""
        self._stopped = True

    def _run(self, until: Optional[float], max_events: int) -> None:
        if self._running:
            raise SimulationError("re-entrant run() call")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self.clock._advance_to(head.time)
                self.events_executed += 1
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self.now}; "
                        f"likely a zero-delay event loop (last label={head.label!r})"
                    )
                head.callback()
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for h in self._heap if not h.cancelled)

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        for handle in sorted(self._heap):
            if not handle.cancelled:
                return handle.time
        return None
