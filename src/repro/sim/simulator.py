"""The discrete-event simulator.

Design notes
------------
* Events with equal timestamps fire in scheduling order (deterministic).
* The kernel owns a :class:`SimulatedClock`; user code reads it but never
  advances it.
* ``max_events`` guards against runaway zero-delay loops; hitting it raises
  :class:`~repro.errors.SimulationError` instead of hanging.

Fast path
---------
The heap stores ``(time, seq, handle)`` tuples rather than bare
:class:`EventHandle` objects: ``seq`` is unique, so sift comparisons never
reach the handle and run entirely in C.  Cancellation stays lazy
(tombstones are skipped at the head), but the kernel counts live
tombstones and compacts the heap in place once they dominate it, so
recurring timers that reschedule cannot grow the heap without bound.
Pop order is a total order on ``(time, seq)``, so compaction — and any
heap re-arrangement — cannot change execution order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.check import get_checker
from repro.errors import SchedulingError, SimulationError
from repro.obs import get_registry
from repro.sim.event import EventHandle
from repro.util.clock import SimulatedClock

#: Compact only when at least this many tombstones are buried in the heap
#: (and they outnumber the live entries); keeps small simulations from
#: paying rebuild costs for a handful of cancelled timers.
COMPACTION_MIN_TOMBSTONES = 64

_HeapEntry = Tuple[float, int, EventHandle]


class Simulator:
    """Deterministic discrete-event simulation kernel.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulatedClock(start_time)
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: cancelled handles still buried in the heap (lazy tombstones)
        self._tombstones = 0
        #: lifetime stats for introspection and the perf harness
        self.heap_compactions = 0
        self.tombstones_evicted = 0
        self._m_cancelled = get_registry().counter("sim.events_cancelled")
        checker = get_checker()
        self._check = checker.sim_hook() if checker.enabled else None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        time = self.clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, label)
        handle.owner = self
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self.clock._now:
            raise SchedulingError(f"cannot schedule at {time} < now {self.now}")
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, label)
        handle.owner = self
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_many(
        self,
        delay: float,
        callbacks: Iterable[Callable[[], None]],
        label: str = "",
    ) -> List[EventHandle]:
        """Schedule a batch of callbacks at the same timestamp.

        Equivalent to calling :meth:`schedule` once per callback — the
        handles get contiguous sequence numbers, so they fire in iteration
        order, after anything already queued at that time and before
        anything scheduled later.  One bounds check and one set of loop
        bindings instead of N makes this the cheap way to fan out
        same-time work (e.g. delivering an aggregated train).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        time = self.clock._now + delay
        heap = self._heap
        push = heapq.heappush
        seq = self._seq
        handles: List[EventHandle] = []
        append = handles.append
        for callback in callbacks:
            handle = EventHandle(time, seq, callback, label)
            handle.owner = self
            push(heap, (time, seq, handle))
            seq += 1
            append(handle)
        self._seq = seq
        return handles

    # ------------------------------------------------------------------
    # tombstone accounting (called from EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._tombstones = count = self._tombstones + 1
        self._m_cancelled.inc()
        if count >= COMPACTION_MIN_TOMBSTONES and count * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones, in place.

        In-place (slice assignment) so that a ``heap`` binding held by an
        in-flight ``_run`` loop stays valid when a callback cancels enough
        events to trigger compaction mid-run.
        """
        heap = self._heap
        evicted = self._tombstones
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._tombstones = 0
        self.heap_compactions += 1
        self.tombstones_evicted += evicted

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; return False when none remain."""
        heap = self._heap
        while heap:
            time, _seq, handle = heapq.heappop(heap)
            handle.owner = None
            if handle.cancelled:
                self._tombstones -= 1
                continue
            self.clock._advance_to(time)
            self.events_executed += 1
            if self._check is not None:
                self._check.on_execute(time, handle.label)
            handle.callback()
            return True
        return False

    def run(self, max_events: int = 100_000_000) -> None:
        """Run until the event queue drains (or ``stop`` is called)."""
        self._run(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: int = 100_000_000) -> None:
        """Run events with ``time <= until``; the clock ends at ``until``.

        Events scheduled after ``until`` remain queued, so simulation can be
        resumed with further ``run*`` calls.
        """
        self._run(until=until, max_events=max_events)
        if self.clock.now() < until:
            self.clock._advance_to(until)

    def stop(self) -> None:
        """Stop the current ``run*`` call after the in-flight event."""
        self._stopped = True
        if self._check is not None:
            self._check.on_stop()

    def _run(self, until: Optional[float], max_events: int) -> None:
        if self._running:
            raise SimulationError("re-entrant run() call")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        clock = self.clock
        inv = self._check
        if inv is not None:
            inv.on_run_begin()
        try:
            while heap and not self._stopped:
                time, _seq, head = heap[0]
                if head.cancelled:
                    pop(heap)
                    head.owner = None
                    self._tombstones -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                head.owner = None
                # Direct write: scheduling validated time >= now and the
                # heap pops in time order, so monotonicity holds.
                clock._now = time
                self.events_executed += 1
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self.now}; "
                        f"likely a zero-delay event loop (last label={head.label!r})"
                    )
                if inv is not None:
                    inv.on_execute(time, head.label)
                head.callback()
        finally:
            self._running = False
            if inv is not None:
                inv.on_run_end()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return len(self._heap) - self._tombstones

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty.

        Pops tombstoned heads on the way, so repeated peeks stay O(1)
        amortised instead of sorting the heap.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if not head[2].cancelled:
                return head[0]
            heapq.heappop(heap)
            head[2].owner = None
            self._tombstones -= 1
        return None
