"""The discrete-event simulator.

Design notes
------------
* Events with equal timestamps fire in scheduling order (deterministic).
* The kernel owns a :class:`SimulatedClock`; user code reads it but never
  advances it.
* ``max_events`` guards against runaway zero-delay loops; hitting it raises
  :class:`~repro.errors.SimulationError` instead of hanging.

Fast path
---------
The heap stores ``(time, seq, handle)`` tuples rather than bare
:class:`EventHandle` objects: ``seq`` is unique, so sift comparisons never
reach the handle and run entirely in C.  Cancellation stays lazy
(tombstones are skipped at the head), but the kernel counts live
tombstones and compacts the queues in place once they dominate them, so
recurring timers that reschedule cannot grow the queues without bound.
Pop order is a total order on ``(time, seq)``, so compaction — and any
re-arrangement — cannot change execution order.

Run queue (``fastpath.RUN_QUEUE``)
----------------------------------
Simulation workloads schedule in *almost sorted* order: the executing
event at ``t`` usually schedules at ``t + delta`` for a small set of
deltas, so successive pushes are non-decreasing with occasional
far-future jumps (timeouts, retry timers).  Paying a full O(log n) heap
sift per event for a stream that is already sorted is the kernel's
single biggest cost, so the fast path keeps a second queue: a deque of
bare handles, maintained sorted by appending at the tail while pushes
stay monotone.  A push that is *smaller* than the tail first ejects the
blocking tail entries into the heap — each entry can be ejected at most
once in its lifetime, so ejection is amortized O(1) per scheduled event,
and far-future entries migrate to the heap where they belong.  Pops take
the minimum of the two sorted sources; since both are individually
sorted, the merge always yields the global ``(time, seq)`` minimum
regardless of which queue holds an entry, so execution order is
bit-identical to the heap-only reference path.  Run-queue entries are
never sifted, so they skip the ``(time, seq, handle)`` tuple entirely —
one allocation per event instead of two.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Deque, Iterable, List, Optional, Tuple

from repro import fastpath
from repro.check import get_checker
from repro.errors import SchedulingError, SimulationError
from repro.obs import get_registry
from repro.sim.event import EventHandle
from repro.util.clock import SimulatedClock

#: Compact only when at least this many tombstones are buried in the queues
#: (and they outnumber the live entries); keeps small simulations from
#: paying rebuild costs for a handful of cancelled timers.
COMPACTION_MIN_TOMBSTONES = 64

_HeapEntry = Tuple[float, int, EventHandle]

#: Allocating an EventHandle without running ``__init__`` (the slot stores
#: are inlined at the scheduling sites) saves a call frame per event on
#: the hottest allocation in the kernel.  The inlined stores mirror
#: ``EventHandle.__init__`` — keep the two in sync.
_new_handle = object.__new__


class Simulator:
    """Deterministic discrete-event simulation kernel.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulatedClock(start_time)
        self._heap: List[_HeapEntry] = []
        #: tail-sorted near-future queue of bare handles (see module
        #: docstring); merged with the heap on pop, so it is always safe
        #: to leave entries here
        self._run_q: Deque[EventHandle] = deque()
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: cancelled handles still buried in the queues (lazy tombstones)
        self._tombstones = 0
        #: lifetime stats for introspection and the perf harness
        self.heap_compactions = 0
        self.tombstones_evicted = 0
        self._m_cancelled = get_registry().counter("sim.events_cancelled")
        checker = get_checker()
        self._check = checker.sim_hook() if checker.enabled else None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        time = self.clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.label = label
        handle.owner = self
        if fastpath.RUN_QUEUE:
            run_q = self._run_q
            if run_q and time < run_q[-1].time:
                # Out-of-order push: eject the blocking tail into the heap
                # (each entry is ejected at most once — amortized O(1)).
                heap = self._heap
                push = heapq.heappush
                eject = run_q.pop
                while run_q and run_q[-1].time > time:
                    tail = eject()
                    push(heap, (tail.time, tail.seq, tail))
            run_q.append(handle)
        else:
            heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self.clock._now:
            raise SchedulingError(f"cannot schedule at {time} < now {self.now}")
        seq = self._seq
        self._seq = seq + 1
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.label = label
        handle.owner = self
        if fastpath.RUN_QUEUE:
            run_q = self._run_q
            if run_q and time < run_q[-1].time:
                heap = self._heap
                push = heapq.heappush
                eject = run_q.pop
                while run_q and run_q[-1].time > time:
                    tail = eject()
                    push(heap, (tail.time, tail.seq, tail))
            run_q.append(handle)
        else:
            heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_many(
        self,
        delay: float,
        callbacks: Iterable[Callable[[], None]],
        label: str = "",
    ) -> List[EventHandle]:
        """Schedule a batch of callbacks at the same timestamp.

        Equivalent to calling :meth:`schedule` once per callback — the
        handles get contiguous sequence numbers, so they fire in iteration
        order, after anything already queued at that time and before
        anything scheduled later.  One bounds check and one set of loop
        bindings instead of N makes this the cheap way to fan out
        same-time work (e.g. delivering an aggregated train).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        time = self.clock._now + delay
        seq = self._seq
        handles: List[EventHandle] = []
        append = handles.append
        if fastpath.RUN_QUEUE:
            run_q = self._run_q
            if run_q and time < run_q[-1].time:
                heap = self._heap
                push = heapq.heappush
                eject = run_q.pop
                while run_q and run_q[-1].time > time:
                    tail = eject()
                    push(heap, (tail.time, tail.seq, tail))
            enqueue = run_q.append
            for callback in callbacks:
                handle = EventHandle(time, seq, callback, label)
                handle.owner = self
                enqueue(handle)
                seq += 1
                append(handle)
        else:
            heap = self._heap
            push = heapq.heappush
            for callback in callbacks:
                handle = EventHandle(time, seq, callback, label)
                handle.owner = self
                push(heap, (time, seq, handle))
                seq += 1
                append(handle)
        self._seq = seq
        return handles

    # ------------------------------------------------------------------
    # tombstone accounting (called from EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._tombstones = count = self._tombstones + 1
        self._m_cancelled.inc()
        if count >= COMPACTION_MIN_TOMBSTONES and count * 2 > len(self._heap) + len(self._run_q):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queues without tombstones, in place.

        In-place (slice assignment / clear+extend) so that ``heap`` and
        ``run_q`` bindings held by an in-flight ``_run`` loop stay valid
        when a callback cancels enough events to trigger compaction
        mid-run.  The run queue is sorted, so filtering preserves order.
        """
        heap = self._heap
        evicted = self._tombstones
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        run_q = self._run_q
        if run_q:
            live = [handle for handle in run_q if not handle.cancelled]
            run_q.clear()
            run_q.extend(live)
        self._tombstones = 0
        self.heap_compactions += 1
        self.tombstones_evicted += evicted

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[EventHandle]:
        """Pop the globally minimal handle across both sorted sources."""
        heap = self._heap
        run_q = self._run_q
        if run_q:
            if heap:
                head = run_q[0]
                h0 = heap[0]
                h0t = h0[0]
                rt = head.time
                if h0t < rt or (h0t == rt and h0[1] < head.seq):
                    return heapq.heappop(heap)[2]
            return run_q.popleft()
        if heap:
            return heapq.heappop(heap)[2]
        return None

    def step(self) -> bool:
        """Execute the next pending event; return False when none remain."""
        while True:
            handle = self._pop_next()
            if handle is None:
                return False
            handle.owner = None
            if handle.cancelled:
                self._tombstones -= 1
                continue
            time = handle.time
            self.clock._advance_to(time)
            self.events_executed += 1
            if self._check is not None:
                self._check.on_execute(time, handle.label)
            handle.callback()
            return True

    def run(self, max_events: int = 100_000_000) -> None:
        """Run until the event queue drains (or ``stop`` is called)."""
        self._run(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: int = 100_000_000) -> None:
        """Run events with ``time <= until``; the clock ends at ``until``.

        Events scheduled after ``until`` remain queued, so simulation can be
        resumed with further ``run*`` calls.
        """
        self._run(until=until, max_events=max_events)
        if self.clock.now() < until:
            self.clock._advance_to(until)

    def stop(self) -> None:
        """Stop the current ``run*`` call after the in-flight event."""
        self._stopped = True
        if self._check is not None:
            self._check.on_stop()

    def _run(self, until: Optional[float], max_events: int) -> None:
        if self._running:
            raise SimulationError("re-entrant run() call")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        run_q = self._run_q
        pop = heapq.heappop
        popleft = run_q.popleft
        clock = self.clock
        inv = self._check
        limit = math.inf if until is None else until
        if inv is not None:
            inv.on_run_begin()
        try:
            # Two copies of the loop: the checker-off variant drops the
            # per-event hook call from the hottest loop in the codebase.
            # Keep the bodies in sync.
            if inv is None:
                while not self._stopped:
                    # Merged pop: both sources are sorted, so comparing
                    # heads yields the global (time, seq) minimum.  The
                    # float compare settles everything except exact-time
                    # ties, which fall back to the seq tie-break.
                    if run_q:
                        handle = run_q[0]
                        if heap:
                            h0 = heap[0]
                            h0t = h0[0]
                            rt = handle.time
                            if h0t < rt or (h0t == rt and h0[1] < handle.seq):
                                entry = pop(heap)
                                handle = entry[2]
                                if handle.cancelled:
                                    handle.owner = None
                                    self._tombstones -= 1
                                    continue
                                if h0t > limit:
                                    heapq.heappush(heap, entry)
                                    break
                                handle.owner = None
                                clock._now = h0t
                                executed += 1
                                if executed > max_events:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events} at t={self.now}; "
                                        f"likely a zero-delay event loop "
                                        f"(last label={handle.label!r})"
                                    )
                                handle.callback()
                                continue
                        popleft()
                    elif heap:
                        handle = pop(heap)[2]
                    else:
                        break
                    if handle.cancelled:
                        handle.owner = None
                        self._tombstones -= 1
                        continue
                    time = handle.time
                    if time > limit:
                        # Put the (globally minimal) handle back at the run
                        # queue head; it stays <= run_q[0], so order holds.
                        run_q.appendleft(handle)
                        break
                    handle.owner = None
                    # Direct write: scheduling validated time >= now and
                    # the merged pop is in time order, so monotonicity
                    # holds.
                    clock._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self.now}; "
                            f"likely a zero-delay event loop (last label={handle.label!r})"
                        )
                    handle.callback()
            else:
                while not self._stopped:
                    if run_q:
                        handle = run_q[0]
                        if heap:
                            h0 = heap[0]
                            h0t = h0[0]
                            rt = handle.time
                            if h0t < rt or (h0t == rt and h0[1] < handle.seq):
                                entry = pop(heap)
                                handle = entry[2]
                                if handle.cancelled:
                                    handle.owner = None
                                    self._tombstones -= 1
                                    continue
                                if h0t > limit:
                                    heapq.heappush(heap, entry)
                                    break
                                handle.owner = None
                                clock._now = h0t
                                executed += 1
                                if executed > max_events:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events} at t={self.now}; "
                                        f"likely a zero-delay event loop "
                                        f"(last label={handle.label!r})"
                                    )
                                inv.on_execute(h0t, handle.label)
                                handle.callback()
                                continue
                        popleft()
                    elif heap:
                        handle = pop(heap)[2]
                    else:
                        break
                    if handle.cancelled:
                        handle.owner = None
                        self._tombstones -= 1
                        continue
                    time = handle.time
                    if time > limit:
                        run_q.appendleft(handle)
                        break
                    handle.owner = None
                    clock._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self.now}; "
                            f"likely a zero-delay event loop (last label={handle.label!r})"
                        )
                    inv.on_execute(time, handle.label)
                    handle.callback()
        finally:
            self.events_executed += executed
            self._running = False
            if inv is not None:
                inv.on_run_end()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return len(self._heap) + len(self._run_q) - self._tombstones

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty.

        Pops tombstoned heads on the way, so repeated peeks stay O(1)
        amortised instead of sorting the queues.
        """
        heap = self._heap
        run_q = self._run_q
        while True:
            from_heap = True
            if run_q:
                head = run_q[0]
                if heap:
                    h0 = heap[0]
                    if h0[0] < head.time or (h0[0] == head.time and h0[1] < head.seq):
                        head = h0[2]
                    else:
                        from_heap = False
                else:
                    from_heap = False
            elif heap:
                head = heap[0][2]
            else:
                return None
            if not head.cancelled:
                return head.time
            if from_heap:
                heapq.heappop(heap)
            else:
                run_q.popleft()
            head.owner = None
            self._tombstones -= 1
