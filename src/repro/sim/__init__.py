"""Discrete-event simulation kernel.

A small, deterministic DES: a priority queue of timestamped callbacks with
insertion-order tie-breaking, a :class:`~repro.util.clock.SimulatedClock`
that only the kernel advances, and cancellable event handles.
"""

from repro.sim.event import EventHandle
from repro.sim.process import Process, ProcessEnv, Signal, run_process
from repro.sim.simulator import Simulator

__all__ = ["Simulator", "EventHandle", "Process", "ProcessEnv", "Signal", "run_process"]
