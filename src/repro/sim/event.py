"""Scheduled-event handles for the DES kernel."""

from __future__ import annotations

from typing import Callable, Optional


class EventHandle:
    """Handle to a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    it reaches the front, which keeps :meth:`cancel` O(1).  The owning
    :class:`~repro.sim.simulator.Simulator` is notified (via ``owner``) so
    it can account tombstones and compact the heap when they pile up; the
    kernel clears ``owner`` once the entry leaves the heap, so cancelling
    an already-fired handle stays a cheap no-op.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "owner")

    # NOTE: the Simulator scheduling fast paths construct handles via
    # ``object.__new__`` and inline these slot stores; keep them in sync
    # with any change here.
    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self.owner: Optional[object] = None

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call multiple times."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = _noop
        owner = self.owner
        if owner is not None:
            owner._note_cancelled()  # type: ignore[attr-defined]

    def __lt__(self, other: "EventHandle") -> bool:
        # Tie-break equal timestamps by scheduling order for determinism.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.9f}, seq={self.seq}, {state}, {self.label!r})"


def _noop() -> None:
    return None
