"""Plain-UDP transport: one frame per datagram, fire-and-forget.

No ordering, no reliability, no fragmentation beyond what the OS does —
frames must fit a datagram (the middleware's 65 kB buffer limit is below
the 64 KiB UDP maximum, so any valid message fits).
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.aio.transport import DatagramHandler, Endpoint


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, on_datagram: Optional[DatagramHandler]) -> None:
        self.on_datagram = on_datagram
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:  # pragma: no cover - asyncio hook
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if self.on_datagram is not None:
            self.on_datagram(bytes(data), (addr[0], addr[1]))


class UdpEndpoint:
    """A bound UDP socket usable for both sending and receiving frames.

    ``adaptor`` optionally interposes a fault-injecting
    :class:`repro.aio.adaptors.SocketAdaptor` on the outgoing path.
    """

    def __init__(self, adaptor: Optional[object] = None) -> None:
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._protocol: Optional[_Protocol] = None
        self.adaptor = adaptor

    async def open(self, host: str, port: int, on_datagram: Optional[DatagramHandler] = None) -> Endpoint:
        loop = asyncio.get_running_loop()
        self._transport, self._protocol = await loop.create_datagram_endpoint(
            lambda: _Protocol(on_datagram), local_addr=(host, port)
        )
        sock = self._transport.get_extra_info("sockname")
        return (sock[0], sock[1])

    def send(self, frame: bytes, remote: Endpoint) -> None:
        if self._transport is None:
            raise RuntimeError("endpoint not open")
        if self.adaptor is not None:
            self.adaptor.sendto(frame, remote, self._transmit)
        else:
            self._transport.sendto(frame, remote)

    def _transmit(self, frame: bytes, remote: Endpoint) -> None:
        if self._transport is not None:
            self._transport.sendto(frame, remote)

    async def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class UdpTransport:
    """Connectionless: the network component uses :class:`UdpEndpoint`
    directly (datagrams dispatch by port, not per-connection)."""

    name = "udp"
