"""Fault-injecting socket adaptors for the datagram transports.

Modelled on COMP4621-Protocol's ``adaptors.py`` (see SNIPPETS.md): a
socket adaptor sits between a protocol endpoint and its UDP socket and
perturbs *outgoing* packets — dropping, duplicating, delaying, truncating
or any chain thereof.  Both :class:`~repro.aio.udt.UdtLiteEndpoint` and
:class:`~repro.aio.udp.UdpEndpoint` accept one via their ``adaptor``
parameter, which makes loss patterns that the ``loss_fn`` hook cannot
express (lost ACKs, duplicated control packets, corrupted lengths)
scriptable in tests without touching the protocol code.

All randomised adaptors take an explicit seed, so campaigns stay
deterministic; predicates receive ``(packet_bytes, remote)`` and may
parse the packet (see :func:`udt_packet_type`).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Tuple

from repro.aio.transport import Endpoint

#: the raw transmit continuation an adaptor forwards (possibly mutated)
#: packets to — ultimately ``DatagramTransport.sendto``
Transmit = Callable[[bytes, Endpoint], None]
PacketPredicate = Callable[[bytes, Endpoint], bool]


def udt_packet_type(packet: bytes) -> int:
    """The UDT-lite packet type of a raw datagram (0 if too short).

    Usable in predicates to target control packets, e.g.
    ``DropAdaptor(match=lambda p, _: udt_packet_type(p) == udt.ACK)``.
    """
    return packet[0] if packet else 0


class SocketAdaptor:
    """Base adaptor: forwards every packet unchanged.

    Subclasses override :meth:`sendto` and call ``transmit`` zero, one or
    several times.  Adaptors must be driven from the event-loop thread
    (they may schedule delayed transmissions on the running loop).
    """

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        transmit(packet, remote)


class DropAdaptor(SocketAdaptor):
    """Drop packets by predicate, probability, or both.

    ``max_drops`` bounds the total (e.g. "drop the first two ACKs"), after
    which everything passes — the shape most regression tests want, since
    a protocol under test must eventually make progress.
    """

    def __init__(
        self,
        probability: float = 0.0,
        seed: int = 0,
        match: Optional[PacketPredicate] = None,
        max_drops: Optional[int] = None,
    ) -> None:
        self.probability = probability
        self.match = match
        self.max_drops = max_drops
        self.dropped = 0
        self._rng = random.Random(seed)

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        eligible = self.match is None or self.match(packet, remote)
        under_budget = self.max_drops is None or self.dropped < self.max_drops
        if eligible and under_budget:
            if self.probability >= 1.0 or self._rng.random() < self.probability:
                self.dropped += 1
                return
        transmit(packet, remote)


class DupAdaptor(SocketAdaptor):
    """Duplicate matching packets (each sent ``copies + 1`` times)."""

    def __init__(
        self,
        probability: float = 1.0,
        seed: int = 0,
        match: Optional[PacketPredicate] = None,
        copies: int = 1,
    ) -> None:
        self.probability = probability
        self.match = match
        self.copies = copies
        self.duplicated = 0
        self._rng = random.Random(seed)

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        transmit(packet, remote)
        if self.match is not None and not self.match(packet, remote):
            return
        if self.probability >= 1.0 or self._rng.random() < self.probability:
            self.duplicated += 1
            for _ in range(self.copies):
                transmit(packet, remote)


class DelayAdaptor(SocketAdaptor):
    """Hold matching packets back for ``delay`` (plus seeded jitter) seconds.

    Delays are scheduled on the running asyncio loop, so ordering between
    a delayed packet and later undelayed ones inverts — which is the
    point: it manufactures reordering on loopback, where the kernel alone
    never reorders.
    """

    def __init__(
        self,
        delay: float = 0.05,
        jitter: float = 0.0,
        seed: int = 0,
        match: Optional[PacketPredicate] = None,
    ) -> None:
        self.delay = delay
        self.jitter = jitter
        self.match = match
        self.delayed = 0
        self._rng = random.Random(seed)

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        if self.match is not None and not self.match(packet, remote):
            transmit(packet, remote)
            return
        import asyncio

        delay = self.delay + (self._rng.random() * self.jitter if self.jitter else 0.0)
        self.delayed += 1
        asyncio.get_running_loop().call_later(delay, transmit, packet, remote)


class TruncateAdaptor(SocketAdaptor):
    """Cut matching packets down to ``keep_bytes`` (corruption-by-loss).

    UDT-lite has no checksum, but its header is self-describing enough
    that a truncated packet exercises the short-packet guards; for plain
    UDP it exercises the middleware's deserialization error paths.
    """

    def __init__(
        self,
        keep_bytes: int = 8,
        probability: float = 1.0,
        seed: int = 0,
        match: Optional[PacketPredicate] = None,
        max_truncations: Optional[int] = None,
    ) -> None:
        self.keep_bytes = keep_bytes
        self.probability = probability
        self.match = match
        self.max_truncations = max_truncations
        self.truncated = 0
        self._rng = random.Random(seed)

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        eligible = self.match is None or self.match(packet, remote)
        under_budget = self.max_truncations is None or self.truncated < self.max_truncations
        if eligible and under_budget and (
            self.probability >= 1.0 or self._rng.random() < self.probability
        ):
            self.truncated += 1
            transmit(packet[: self.keep_bytes], remote)
            return
        transmit(packet, remote)


class ChainAdaptor(SocketAdaptor):
    """Compose adaptors left to right: each feeds the next's sendto."""

    def __init__(self, adaptors: Iterable[SocketAdaptor]) -> None:
        self.adaptors: Tuple[SocketAdaptor, ...] = tuple(adaptors)

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        def step(index: int, pkt: bytes, rmt: Endpoint) -> None:
            if index == len(self.adaptors):
                transmit(pkt, rmt)
                return
            self.adaptors[index].sendto(pkt, rmt, lambda p, r: step(index + 1, p, r))

        step(0, packet, remote)


class RecordingAdaptor(SocketAdaptor):
    """Pass-through that records every packet (assertion helper)."""

    def __init__(self) -> None:
        self.packets: List[Tuple[bytes, Endpoint]] = []

    def sendto(self, packet: bytes, remote: Endpoint, transmit: Transmit) -> None:
        self.packets.append((packet, remote))
        transmit(packet, remote)
