"""AioDataNetwork: the adaptive bundle over real sockets (paper §IV-A).

Same composition as :class:`repro.core.data_network.DataNetwork` — an
interceptor with Sarsa(lambda)-driven per-flow transport selection in
front of the network component — but the network child is
:class:`AioNetwork` and the learning episodes tick on a wall-clock timer,
so the whole transport-selection loop runs against the OS network stack.

Intended for ``KompicsSystem.threaded()`` systems; the netsim backend is
neither required nor touched.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.aio.network import DEFAULT_PROTOCOLS, AioNetwork
from repro.core.data_network import DataNetworkBase
from repro.core.interceptor import PrpFactory, PspFactory
from repro.kompics.component import Component
from repro.kompics.timer import WallTimerComponent
from repro.messaging.address import Address
from repro.messaging.compression import CompressionCodec
from repro.messaging.serialization import SerializerRegistry
from repro.messaging.transport import Transport


class AioDataNetwork(DataNetworkBase):
    """Wrapper composing AioNetwork + DataNetworkInterceptor + wall timer."""

    def __init__(
        self,
        self_address: Address,
        psp_factory: Optional[PspFactory] = None,
        prp_factory: Optional[PrpFactory] = None,
        episode_length: Optional[float] = None,
        window_messages: Optional[int] = None,
        protocols: Iterable[Transport] = DEFAULT_PROTOCOLS,
        serializers: Optional[SerializerRegistry] = None,
        compression: Optional[CompressionCodec] = None,
        timer: Optional[Component] = None,
        bind_ip: Optional[str] = None,
        udt_loss_fn: Optional[Callable[[int], bool]] = None,
        udt_adaptor: Optional[object] = None,
        udp_adaptor: Optional[object] = None,
    ) -> None:
        super().__init__()
        self.self_address = self_address
        self.network = self.create(
            AioNetwork,
            self_address,
            protocols=protocols,
            serializers=serializers,
            compression=compression,
            bind_ip=bind_ip,
            udt_loss_fn=udt_loss_fn,
            udt_adaptor=udt_adaptor,
            udp_adaptor=udp_adaptor,
        )
        if timer is None:
            timer = self.create(WallTimerComponent)
        self._wire_interceptor(timer, psp_factory, prp_factory, episode_length, window_messages)

    @property
    def network_def(self) -> AioNetwork:
        return self.network.definition
