"""Common interfaces for the asyncio transports.

Every transport moves *frames* (already-serialized message bytes) between
endpoints.  Connection-oriented transports (TCP, UDT-lite) exchange a
``hello`` blob during establishment — the middleware uses it to announce
its own listening socket so acceptors can reuse inbound channels for
replies (exactly like the simulated stack's handshake hello).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, Tuple

Endpoint = Tuple[str, int]
FrameHandler = Callable[[bytes], None]
DatagramHandler = Callable[[bytes, Endpoint], None]
ConnectionHandler = Callable[["AioConnection"], None]


class AioConnection(ABC):
    """A framed, ordered duplex connection."""

    def __init__(self) -> None:
        self.on_frame: Optional[FrameHandler] = None
        self.on_closed: Optional[Callable[["AioConnection"], None]] = None
        self.peer_hello: Optional[bytes] = None
        self.closed = False

    @abstractmethod
    async def send_frame(self, data: bytes) -> None:
        """Queue one frame for ordered, reliable delivery."""

    async def send_frames(self, frames: Sequence[bytes]) -> None:
        """Queue a batch of frames.

        The default just loops; transports override it with a vectored
        fast path (one syscall/drain per batch instead of per frame).
        """
        for frame in frames:
            await self.send_frame(frame)

    @abstractmethod
    async def drain(self) -> None:
        """Wait until everything queued so far is on the wire (or acked)."""

    @abstractmethod
    async def close(self) -> None: ...

    def _deliver(self, frame: bytes) -> None:
        if self.on_frame is not None:
            self.on_frame(frame)

    def _closed(self) -> None:
        if not self.closed:
            self.closed = True
            if self.on_closed is not None:
                self.on_closed(self)


class AioListener(ABC):
    """A bound acceptor; close() releases the port."""

    @abstractmethod
    async def close(self) -> None: ...


class AioTransport(ABC):
    """Factory for listeners and outbound connections of one protocol."""

    name: str = "abstract"

    @abstractmethod
    async def listen(self, host: str, port: int, on_connection: ConnectionHandler) -> AioListener:
        """Accept inbound connections on (host, port)."""

    @abstractmethod
    async def connect(self, remote: Endpoint, hello: bytes) -> AioConnection:
        """Dial ``remote``, announcing ``hello`` during establishment."""
