"""Real-network backend built on asyncio.

The simulation substrate reproduces the paper's experiments; this package
makes the same middleware usable on actual sockets:

* :mod:`repro.aio.tcp` — length-framed TCP via asyncio streams.
* :mod:`repro.aio.udp` — plain datagrams (one frame per datagram).
* :mod:`repro.aio.udt` — **UDT-lite**: a from-scratch reliable-UDP
  transport with sequence numbers, cumulative ACKs, NAK-triggered
  retransmission and UDT-style DAIMD rate pacing.  Python has no
  maintained UDT binding, so the library ships its own wire protocol with
  the same guarantees (reliable, ordered) and behaviour class (rate-based,
  RTT-insensitive congestion control).
* :mod:`repro.aio.network` — ``AioNetwork``, a drop-in sibling of
  ``NettyNetwork`` for thread-pool Kompics systems.
"""

from repro.aio.network import AioNetwork
from repro.aio.tcp import TcpTransport
from repro.aio.transport import AioConnection, AioTransport
from repro.aio.udp import UdpTransport
from repro.aio.udt import UdtLiteTransport

__all__ = [
    "AioTransport",
    "AioConnection",
    "TcpTransport",
    "UdpTransport",
    "UdtLiteTransport",
    "AioNetwork",
]
