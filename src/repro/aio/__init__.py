"""Real-network backend built on asyncio.

The simulation substrate reproduces the paper's experiments; this package
makes the same middleware usable on actual sockets:

* :mod:`repro.aio.tcp` — length-framed TCP via asyncio streams, with
  vectored batch writes.
* :mod:`repro.aio.udp` — plain datagrams (one frame per datagram).
* :mod:`repro.aio.udt` — **UDT-lite**: a from-scratch reliable-UDP
  transport with sequence numbers, batched cumulative + selective ACKs,
  NAK-triggered retransmission, 0-RTT handshake resume and UDT-style
  DAIMD rate pacing.  Python has no maintained UDT binding, so the
  library ships its own wire protocol with the same guarantees (reliable,
  ordered) and behaviour class (rate-based, RTT-insensitive congestion
  control).
* :mod:`repro.aio.adaptors` — fault-injecting socket adaptors
  (drop/dup/delay/truncate) for deterministic loss testing.
* :mod:`repro.aio.network` — ``AioNetwork``, a drop-in sibling of
  ``NettyNetwork`` for thread-pool Kompics systems, with frame batching
  and TransportStatus-based channel recovery.
* :mod:`repro.aio.data_network` — ``AioDataNetwork``, the full adaptive
  bundle (interceptor + Sarsa(lambda) selection) over real sockets.
"""

from repro.aio.adaptors import (
    ChainAdaptor,
    DelayAdaptor,
    DropAdaptor,
    DupAdaptor,
    RecordingAdaptor,
    SocketAdaptor,
    TruncateAdaptor,
)
from repro.aio.data_network import AioDataNetwork
from repro.aio.network import AioNetwork
from repro.aio.tcp import TcpTransport
from repro.aio.transport import AioConnection, AioTransport
from repro.aio.udp import UdpTransport
from repro.aio.udt import UdtLiteTransport

__all__ = [
    "AioTransport",
    "AioConnection",
    "TcpTransport",
    "UdpTransport",
    "UdtLiteTransport",
    "AioNetwork",
    "AioDataNetwork",
    "SocketAdaptor",
    "DropAdaptor",
    "DupAdaptor",
    "DelayAdaptor",
    "TruncateAdaptor",
    "ChainAdaptor",
    "RecordingAdaptor",
]
