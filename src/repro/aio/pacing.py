"""Pluggable pacing policies for the real-socket UDT-lite datapath.

The netsim side resolves fluid congestion controllers from
:data:`repro.netsim.congestion.CC_POLICIES`; this module is the
real-socket mirror.  A :class:`PacingPolicy` owns the sender's rate
evolution — :class:`~repro.aio.udt.UdtLiteConnection` calls
``on_interval`` from its pacing loop and ``on_loss`` on NAK or
retransmission timeout, and paces DATA packets at ``policy.rate``
bytes/s.  The transport no longer bakes the DAIMD arithmetic into the
connection: swapping the policy name swaps the behaviour class with the
datapath untouched.

Policy names match the netsim registry where the dynamics correspond
(``udt``, ``reno``, ``cubic``, ``bbr``), so a scenario that sweeps
``cc=`` arms in simulation names the same arms against real sockets.
"""

from __future__ import annotations

import difflib
import math
from typing import Callable, Dict, List

MSS = 1200  # payload bytes per DATA packet (mirrors repro.aio.udt.MSS)
SYN_INTERVAL = 0.01  # UDT's fixed rate-control period
MIN_RATE = 64 * 1024  # rate floor after multiplicative decreases


class UnknownPacerError(KeyError):
    """Raised on a lookup of a name no pacing policy was registered under."""

    def __str__(self) -> str:  # KeyError wraps its message in repr()
        return self.args[0] if self.args else ""


class PacingPolicy:
    """Base pacing policy: a rate plus interval/loss hooks.

    ``on_interval(now)`` fires from the pacing loop before each DATA
    packet (the policy itself rate-limits to one adjustment per
    :data:`SYN_INTERVAL`); ``on_loss(now)`` fires on NAK or RTO.  ``now``
    is ``time.monotonic()`` — wall time, not simulated time.
    """

    name = "base"

    def __init__(self, initial_rate: float, max_rate: float, now: float) -> None:
        self.rate = min(initial_rate, max_rate)
        self.max_rate = max_rate
        self._last_interval = now

    def _interval_elapsed(self, now: float) -> bool:
        if now - self._last_interval >= SYN_INTERVAL:
            self._last_interval = now
            return True
        return False

    def on_interval(self, now: float) -> None:
        raise NotImplementedError

    def on_loss(self, now: float) -> None:
        raise NotImplementedError


class DaimdPacing(PacingPolicy):
    """UDT's DAIMD: probe by max(5%, 10·MSS) per SYN, decrease ×8/9.

    Byte-for-byte the arithmetic the connection used to hard-code.
    """

    name = "udt"
    DECREASE = 8.0 / 9.0

    def on_interval(self, now: float) -> None:
        if self._interval_elapsed(now):
            self.rate = min(self.rate + max(self.rate * 0.05, 10 * MSS), self.max_rate)

    def on_loss(self, now: float) -> None:
        self.rate = max(self.rate * self.DECREASE, MIN_RATE)


class RenoPacing(PacingPolicy):
    """AIMD in rate space: additive probe per SYN interval, halve on loss."""

    name = "reno"
    DECREASE = 0.5

    def on_interval(self, now: float) -> None:
        if self._interval_elapsed(now):
            self.rate = min(self.rate + 10 * MSS, self.max_rate)

    def on_loss(self, now: float) -> None:
        self.rate = max(self.rate * self.DECREASE, MIN_RATE)


class CubicPacing(PacingPolicy):
    """CUBIC-of-time in rate space.

    After a loss the rate follows ``r(t) = C·(t−K)³ + r_max`` where
    ``r_max`` is the pre-loss rate and ``K`` the plateau-recrossing time
    — concave recovery toward the old operating point, then convex
    probing beyond it.  Before the first loss it ramps like slow start
    (×1.5 per interval).
    """

    name = "cubic"
    BETA = 0.7

    def __init__(self, initial_rate: float, max_rate: float, now: float) -> None:
        super().__init__(initial_rate, max_rate, now)
        self._r_max = 0.0
        self._k = 0.0
        self._epoch = -math.inf

    def on_interval(self, now: float) -> None:
        if not self._interval_elapsed(now):
            return
        if self._epoch == -math.inf:
            self.rate = min(self.rate * 1.5, self.max_rate)
            return
        t = now - self._epoch
        # Scale C so recovery spans ~seconds at megabyte rates: the cubic
        # coefficient grows with the plateau rate (RFC 8312 scales with
        # W_max via K; this keeps K's cube root form).
        c = 0.4 * max(self._r_max, MIN_RATE)
        target = c * (t - self._k) ** 3 + self._r_max
        if target > self.rate:
            self.rate = min(target, self.max_rate)

    def on_loss(self, now: float) -> None:
        self._r_max = max(self.rate, MIN_RATE)
        self._k = (1.0 - self.BETA) ** (1.0 / 3.0)
        self._epoch = now
        self.rate = max(self.rate * self.BETA, MIN_RATE)


class BbrPacing(PacingPolicy):
    """BBR-style gain cycling over a bottleneck estimate.

    Startup multiplies the rate per interval until the first loss; after
    that the pacing rate cycles ``1.25, 0.75, 1, …`` of the estimate
    (one phase per interval), and losses decay the estimate gently.
    """

    name = "bbr"
    CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    STARTUP_GAIN = 2.0 ** (1.0 / 4.0)  # doubles every 4 intervals
    LOSS_DECAY = 0.95

    def __init__(self, initial_rate: float, max_rate: float, now: float) -> None:
        super().__init__(initial_rate, max_rate, now)
        self.btl_bw = self.rate
        self.startup = True
        self._phase = 0

    def on_interval(self, now: float) -> None:
        if not self._interval_elapsed(now):
            return
        if self.startup:
            self.rate = min(self.rate * self.STARTUP_GAIN, self.max_rate)
            self.btl_bw = self.rate
            if self.rate >= self.max_rate:
                self.startup = False
            return
        self._phase = (self._phase + 1) % len(self.CYCLE_GAINS)
        self.rate = min(
            max(self.btl_bw * self.CYCLE_GAINS[self._phase], MIN_RATE),
            self.max_rate,
        )

    def on_loss(self, now: float) -> None:
        if self.startup:
            self.startup = False  # full-pipe signal
            return
        self.btl_bw = max(self.btl_bw * self.LOSS_DECAY, MIN_RATE)
        self.rate = max(self.rate * self.LOSS_DECAY, MIN_RATE)


PacerFactory = Callable[[float, float, float], PacingPolicy]

#: registered pacing policies by name (the real-socket mirror of
#: repro.netsim.congestion.CC_POLICIES)
PACERS: Dict[str, PacerFactory] = {
    "udt": DaimdPacing,
    "reno": RenoPacing,
    "cubic": CubicPacing,
    "bbr": BbrPacing,
}


def pacer_names() -> List[str]:
    return sorted(PACERS)


def pacer_by_name(name: str) -> PacerFactory:
    factory = PACERS.get(name)
    if factory is None:
        close = difflib.get_close_matches(name, sorted(PACERS), n=3)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close else ""
        )
        raise UnknownPacerError(
            f"unknown pacing policy {name!r}{hint} "
            f"(registered: {', '.join(sorted(PACERS))})"
        )
    return factory
