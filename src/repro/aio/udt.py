"""UDT-lite: reliable, ordered framing over UDP with DAIMD rate pacing.

A compact re-implementation of UDT's behaviour class (Gu & Grossman,
Computer Networks 2007) sufficient for the middleware:

* DATA packets carry a u32 sequence number and <= MSS payload bytes;
  frames are length-prefixed and split across packets.
* The receiver sends batched cumulative ACKs on a 10 ms timer (UDT's SYN
  interval), each carrying up to :data:`MAX_SACK` selective
  acknowledgements for out-of-order packets it is holding, and immediate
  NAKs when it observes sequence gaps.  Duplicate DATA triggers an
  immediate re-ACK — a dropped ACK packet must not strand the sender in
  an RTO retransmission loop.
* The sender paces packets at ``rate`` bytes/s, increases the rate every
  SYN interval (probing toward a configurable estimate) and applies UDT's
  multiplicative decrease (x 8/9) on NAK or retransmission timeout.
  Selectively-acknowledged packets leave the loss ledger immediately, so
  a single hole never forces the whole flight to retransmit.
* Handshake packets exchange the middleware hello and are retransmitted
  until acknowledged.  A dialler that has completed a handshake with a
  remote before may *resume* 0-RTT style: data flows immediately while
  the handshake confirmation completes in the background (COMP4621's
  "0RTT Handshaking" pattern).

A per-endpoint ``loss_fn`` hook lets tests drop outgoing DATA packets
deterministically, and an optional :class:`~repro.aio.adaptors.SocketAdaptor`
can perturb *every* outgoing packet (drop ACKs, duplicate, delay,
truncate) to exercise the control-plane machinery on a loopback socket.
"""

from __future__ import annotations

import asyncio
import struct
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.aio.pacing import DaimdPacing, PacerFactory, PacingPolicy
from repro.aio.transport import (
    AioConnection,
    AioListener,
    AioTransport,
    ConnectionHandler,
    Endpoint,
)

HEADER = struct.Struct(">BI")  # packet type, sequence/field
LENGTH = struct.Struct(">I")  # frame length prefix inside the byte stream

HANDSHAKE = 1
HANDSHAKE_ACK = 2
DATA = 3
ACK = 4
NAK = 5
CLOSE = 6

#: HANDSHAKE field flag: the dialler believes this is a resumed session
RESUME = 1

MSS = 1200  # payload bytes per DATA packet
SYN_INTERVAL = 0.01  # UDT's fixed rate-control period
DECREASE = 8.0 / 9.0
RTO = 0.25
FLIGHT_WINDOW = 2048  # max unacked packets
MAX_NAK_BATCH = 128
MAX_SACK = 64  # selective acks carried per ACK packet


class UdtLiteConnection(AioConnection):
    """One reliable peer relationship multiplexed over an endpoint."""

    def __init__(
        self,
        endpoint: "UdtLiteEndpoint",
        remote: Endpoint,
        initial_rate: float = 2 * 1024 * 1024,
        max_rate: float = 512 * 1024 * 1024,
        pacer_factory: Optional[PacerFactory] = None,
    ) -> None:
        super().__init__()
        self.endpoint = endpoint
        self.remote = remote
        self.max_rate = max_rate
        # The pacing policy owns the rate; the default DAIMD policy keeps
        # the historical arithmetic byte-for-byte.
        self.pacer: PacingPolicy = (pacer_factory or DaimdPacing)(
            initial_rate, max_rate, time.monotonic()
        )

        # sender state
        self._next_seq = 0
        self._unacked: "OrderedDict[int, bytes]" = OrderedDict()
        self._fresh: Deque[Tuple[int, bytes]] = deque()
        self._retransmit: Deque[int] = deque()
        #: mirrors _retransmit for O(1) membership under bursty NAK storms
        self._retransmit_set: Set[int] = set()
        self._work = asyncio.Event()
        self._all_acked = asyncio.Event()
        self._all_acked.set()
        self._last_progress = time.monotonic()
        self.retransmissions = 0
        self.naks_received = 0
        self.sacked = 0

        # handshake state (0-RTT resume diagnostics)
        self.zero_rtt = False
        self.handshake_confirmed = False

        # receiver state
        self._expected = 0
        self._ooo: Dict[int, bytes] = {}
        self._stream = bytearray()
        self._last_acked_to_peer = -1
        #: set when the peer evidently missed our last ACK (duplicate DATA)
        self._ack_dirty = False
        self._next_reack = 0.0
        self.dup_data_received = 0
        self.reacks_sent = 0

        self._tasks = [
            asyncio.ensure_future(self._pacing_loop()),
            asyncio.ensure_future(self._ack_loop()),
        ]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _enqueue_frames(self, frames: Iterable[bytes]) -> None:
        for data in frames:
            stream = LENGTH.pack(len(data)) + data
            for offset in range(0, len(stream), MSS):
                seq = self._next_seq
                self._next_seq += 1
                self._fresh.append((seq, bytes(stream[offset:offset + MSS])))
        self._all_acked.clear()
        self._work.set()

    async def send_frame(self, data: bytes) -> None:
        self._enqueue_frames((data,))

    async def send_frames(self, frames: Sequence[bytes]) -> None:
        # One enqueue pass and one pacing-loop wakeup for the whole batch.
        self._enqueue_frames(frames)

    async def drain(self) -> None:
        await self._all_acked.wait()

    async def _pacing_loop(self) -> None:
        while not self.closed:
            if not self._retransmit and (not self._fresh or len(self._unacked) >= FLIGHT_WINDOW):
                self._work.clear()
                try:
                    await asyncio.wait_for(self._work.wait(), timeout=RTO)
                except asyncio.TimeoutError:
                    self._check_timeout()
                    continue
            self.pacer.on_interval(time.monotonic())
            packet = self._pop_next()
            if packet is None:
                continue
            seq, payload = packet
            self.endpoint._send_packet(DATA, seq, payload, self.remote)
            await asyncio.sleep(len(payload) / self.pacer.rate)

    def _pop_next(self) -> Optional[Tuple[int, bytes]]:
        while self._retransmit:
            seq = self._retransmit.popleft()
            self._retransmit_set.discard(seq)
            payload = self._unacked.get(seq)
            if payload is not None:
                self.retransmissions += 1
                return seq, payload
        if self._fresh and len(self._unacked) < FLIGHT_WINDOW:
            seq, payload = self._fresh.popleft()
            self._unacked[seq] = payload
            return seq, payload
        return None

    @property
    def rate(self) -> float:
        """Current pacing rate in bytes/s (owned by the pacing policy)."""
        return self.pacer.rate

    def _check_timeout(self) -> None:
        if self._unacked and time.monotonic() - self._last_progress > RTO:
            oldest = next(iter(self._unacked))
            if oldest not in self._retransmit_set:
                self._retransmit.appendleft(oldest)
                self._retransmit_set.add(oldest)
            self.pacer.on_loss(time.monotonic())
            self._last_progress = time.monotonic()
            self._work.set()

    def _on_ack(self, cum: int, sacks: Sequence[int] = ()) -> None:
        progressed = False
        while self._unacked and next(iter(self._unacked)) < cum:
            self._unacked.popitem(last=False)
            progressed = True
        for seq in sacks:
            if self._unacked.pop(seq, None) is not None:
                # Held at the receiver: never retransmit it again.
                self._retransmit_set.discard(seq)
                self.sacked += 1
                progressed = True
        if progressed:
            self._last_progress = time.monotonic()
            self._work.set()
        if not self._unacked and not self._fresh and not self._retransmit:
            self._all_acked.set()

    def _on_nak(self, seqs: Iterable[int]) -> None:
        self.naks_received += 1
        for seq in seqs:
            if seq in self._unacked and seq not in self._retransmit_set:
                self._retransmit.append(seq)
                self._retransmit_set.add(seq)
        self.pacer.on_loss(time.monotonic())
        self._work.set()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_data(self, seq: int, payload: bytes) -> None:
        if seq < self._expected:
            # Duplicate of something already consumed: the peer would only
            # retransmit this if our cumulative ACK got lost.  Re-ACK now,
            # or the sender RTO-loops on the oldest packet forever.
            self.dup_data_received += 1
            self._reack()
            return
        if seq > self._expected:
            if seq in self._ooo:
                # Duplicate out-of-order packet: our ACK carrying its
                # selective acknowledgement (or the NAK reply) was lost.
                self.dup_data_received += 1
                self._reack()
                return
            self._ooo[seq] = payload
            missing = [s for s in range(self._expected, min(seq, self._expected + MAX_NAK_BATCH))
                       if s not in self._ooo]
            if missing:
                self.endpoint._send_packet(
                    NAK, len(missing),
                    b"".join(LENGTH.pack(s) for s in missing),
                    self.remote,
                )
            return
        self._consume(payload)
        while self._expected in self._ooo:
            self._consume(self._ooo.pop(self._expected))

    def _consume(self, payload: bytes) -> None:
        self._expected += 1
        self._stream.extend(payload)
        while len(self._stream) >= LENGTH.size:
            (length,) = LENGTH.unpack_from(self._stream)
            if len(self._stream) < LENGTH.size + length:
                break
            frame = bytes(self._stream[LENGTH.size:LENGTH.size + length])
            del self._stream[:LENGTH.size + length]
            self._deliver(frame)

    def _send_ack(self) -> None:
        self._last_acked_to_peer = self._expected - 1
        self._ack_dirty = False
        sacks = sorted(self._ooo)[:MAX_SACK]
        self.endpoint._send_packet(
            ACK, self._expected,
            b"".join(LENGTH.pack(s) for s in sacks),
            self.remote,
        )

    def _reack(self) -> None:
        """Resend the current cumulative ACK, rate-limited to SYN_INTERVAL.

        Immediate where possible (a retransmission burst should be cut
        short right away), deferred to the ack loop otherwise so duplicate
        floods cannot amplify into ACK floods.
        """
        now = time.monotonic()
        if now >= self._next_reack:
            self._next_reack = now + SYN_INTERVAL
            self.reacks_sent += 1
            self._send_ack()
        else:
            self._ack_dirty = True

    async def _ack_loop(self) -> None:
        while not self.closed:
            await asyncio.sleep(SYN_INTERVAL)
            if self._expected - 1 != self._last_acked_to_peer or self._ack_dirty:
                self._send_ack()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        if not self.closed:
            self.endpoint._send_packet(CLOSE, 0, b"", self.remote)
        self._teardown()
        # _teardown only *cancels* the pacing/ACK loops (it must stay sync
        # for the datagram-receive path); here we can wait for them to
        # actually unwind so the loop never stops over a pending task.
        await asyncio.gather(*self._tasks, return_exceptions=True)

    def _teardown(self) -> None:
        for task in self._tasks:
            task.cancel()
        # Torn down mid 0-RTT resume: _confirm_handshake was cancelled
        # above before it could decide, so the transport's session cache
        # still lists this peer.  Purge it here — a later dial must not
        # resume 0-RTT against a session the peer never confirmed (e.g.
        # the peer crashed and restarted with empty reassembly state).
        if self.zero_rtt and not self.handshake_confirmed:
            if self.endpoint.on_resume_failed is not None:
                self.endpoint.on_resume_failed(self.remote)
        self.endpoint._forget(self.remote)
        if getattr(self, "owns_endpoint", False) and self.endpoint._transport is not None:
            self.endpoint._transport.close()
            self.endpoint._transport = None
        self._closed()


class _UdtProtocol(asyncio.DatagramProtocol):
    def __init__(self, endpoint: "UdtLiteEndpoint") -> None:
        self.endpoint = endpoint

    def connection_made(self, transport) -> None:  # pragma: no cover - asyncio hook
        self.endpoint._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.endpoint._on_packet(bytes(data), (addr[0], addr[1]))


class UdtLiteEndpoint:
    """One UDP socket multiplexing UDT-lite connections by peer address."""

    def __init__(
        self,
        on_connection: Optional[ConnectionHandler] = None,
        loss_fn: Optional[Callable[[int], bool]] = None,
        initial_rate: float = 2 * 1024 * 1024,
        adaptor: Optional[object] = None,
        pacer_factory: Optional[PacerFactory] = None,
    ) -> None:
        self.on_connection = on_connection
        self.loss_fn = loss_fn
        self.initial_rate = initial_rate
        self.pacer_factory = pacer_factory
        #: fault-injecting :class:`repro.aio.adaptors.SocketAdaptor` (tests)
        self.adaptor = adaptor
        self.connections: Dict[Endpoint, UdtLiteConnection] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._handshake_acks: Dict[Endpoint, asyncio.Event] = {}
        self.local: Optional[Endpoint] = None
        self.resumed_handshakes = 0
        #: called when a 0-RTT resume never got its HANDSHAKE_ACK
        self.on_resume_failed: Optional[Callable[[Endpoint], None]] = None

    async def open(self, host: str, port: int) -> Endpoint:
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdtProtocol(self), local_addr=(host, port)
        )
        sock = self._transport.get_extra_info("sockname")
        self.local = (sock[0], sock[1])
        return self.local

    # ------------------------------------------------------------------
    # packet I/O
    # ------------------------------------------------------------------
    def _send_packet(self, ptype: int, field: int, payload: bytes, remote: Endpoint) -> None:
        if self._transport is None:
            return
        if ptype == DATA and self.loss_fn is not None and self.loss_fn(field):
            return  # injected loss (tests)
        packet = HEADER.pack(ptype, field) + payload
        if self.adaptor is not None:
            self.adaptor.sendto(packet, remote, self._transmit)
        else:
            self._transmit(packet, remote)

    def _transmit(self, packet: bytes, remote: Endpoint) -> None:
        if self._transport is not None:
            self._transport.sendto(packet, remote)

    def _on_packet(self, data: bytes, src: Endpoint) -> None:
        if len(data) < HEADER.size:
            return
        ptype, field = HEADER.unpack_from(data)
        payload = data[HEADER.size:]
        if ptype == HANDSHAKE:
            conn = self.connections.get(src)
            if conn is None:
                conn = UdtLiteConnection(
                    self, src, initial_rate=self.initial_rate,
                    pacer_factory=self.pacer_factory,
                )
                conn.peer_hello = payload
                self.connections[src] = conn
                if field & RESUME:
                    self.resumed_handshakes += 1
                if self.on_connection is not None:
                    self.on_connection(conn)
            self._send_packet(HANDSHAKE_ACK, 0, b"", src)
            return
        if ptype == HANDSHAKE_ACK:
            event = self._handshake_acks.get(src)
            if event is not None:
                event.set()
            conn = self.connections.get(src)
            if conn is not None:
                conn.handshake_confirmed = True
            return
        conn = self.connections.get(src)
        if conn is None:
            return
        if ptype == DATA:
            conn._on_data(field, payload)
        elif ptype == ACK:
            sacks = [LENGTH.unpack_from(payload, i * 4)[0]
                     for i in range(len(payload) // 4)]
            conn._on_ack(field, sacks)
        elif ptype == NAK:
            seqs = [LENGTH.unpack_from(payload, i * 4)[0] for i in range(field)
                    if (i + 1) * 4 <= len(payload)]
            conn._on_nak(seqs)
        elif ptype == CLOSE:
            conn._teardown()

    # ------------------------------------------------------------------
    # client-side establishment
    # ------------------------------------------------------------------
    async def dial(
        self,
        remote: Endpoint,
        hello: bytes,
        timeout: float = 5.0,
        resume: bool = False,
    ) -> UdtLiteConnection:
        existing = self.connections.get(remote)
        if existing is not None and not existing.closed:
            event = self._handshake_acks.get(remote)
            if event is None or event.is_set():
                return existing  # already established
            # Another dial to the same remote is mid-handshake: ride it
            # instead of clobbering its event (which would strand the
            # first dialler waiting on an Event nobody will ever set).
            await asyncio.wait_for(event.wait(), timeout)
            return existing

        event = asyncio.Event()
        self._handshake_acks[remote] = event
        conn = UdtLiteConnection(
            self, remote, initial_rate=self.initial_rate,
            pacer_factory=self.pacer_factory,
        )
        self.connections[remote] = conn

        if resume:
            # 0-RTT resume: the remote has seen us before, so send the
            # handshake and start pushing DATA immediately; confirmation
            # (and retransmission of the hello) continues in the
            # background.  An unknown receiver simply drops DATA from an
            # unestablished source until the retried HANDSHAKE lands —
            # the sender's RTO machinery re-sends the early packets.
            conn.zero_rtt = True
            self._send_packet(HANDSHAKE, RESUME, hello, remote)
            conn._tasks.append(asyncio.ensure_future(
                self._confirm_handshake(conn, event, hello, remote, timeout)
            ))
            return conn

        deadline = time.monotonic() + timeout
        try:
            while True:
                self._send_packet(HANDSHAKE, 0, hello, remote)
                try:
                    await asyncio.wait_for(event.wait(), timeout=0.2)
                    conn.handshake_confirmed = True
                    return conn
                except asyncio.TimeoutError:
                    if time.monotonic() > deadline:
                        conn._teardown()
                        raise ConnectionError(f"UDT-lite handshake to {remote} timed out")
        finally:
            if self._handshake_acks.get(remote) is event:
                self._handshake_acks.pop(remote, None)

    async def _confirm_handshake(
        self,
        conn: UdtLiteConnection,
        event: asyncio.Event,
        hello: bytes,
        remote: Endpoint,
        timeout: float,
    ) -> None:
        """Background retransmit-until-acked for a 0-RTT resumed dial."""
        deadline = time.monotonic() + timeout
        try:
            while not conn.closed:
                try:
                    await asyncio.wait_for(event.wait(), timeout=0.2)
                    conn.handshake_confirmed = True
                    return
                except asyncio.TimeoutError:
                    if time.monotonic() > deadline:
                        if self.on_resume_failed is not None:
                            self.on_resume_failed(remote)
                        conn._teardown()
                        return
                    self._send_packet(HANDSHAKE, RESUME, hello, remote)
        finally:
            if self._handshake_acks.get(remote) is event:
                self._handshake_acks.pop(remote, None)

    def _forget(self, remote: Endpoint) -> None:
        self.connections.pop(remote, None)

    async def close(self) -> None:
        for conn in list(self.connections.values()):
            await conn.close()
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class _UdtListener(AioListener):
    def __init__(self, endpoint: UdtLiteEndpoint) -> None:
        self.endpoint = endpoint

    async def close(self) -> None:
        await self.endpoint.close()


class UdtLiteTransport(AioTransport):
    """AioTransport facade over :class:`UdtLiteEndpoint`."""

    name = "udt"

    def __init__(self, initial_rate: float = 2 * 1024 * 1024,
                 loss_fn: Optional[Callable[[int], bool]] = None,
                 adaptor: Optional[object] = None,
                 pacer_factory: Optional[PacerFactory] = None) -> None:
        self.initial_rate = initial_rate
        self.loss_fn = loss_fn
        self.adaptor = adaptor
        #: pacing policy for every connection this transport creates;
        #: None keeps the historical DAIMD behaviour
        self.pacer_factory = pacer_factory
        #: remotes that completed a full handshake: eligible for 0-RTT
        self._sessions: Set[Endpoint] = set()
        self.zero_rtt_resumes = 0

    async def listen(self, host: str, port: int, on_connection: ConnectionHandler) -> AioListener:
        endpoint = UdtLiteEndpoint(
            on_connection=on_connection, loss_fn=self.loss_fn,
            initial_rate=self.initial_rate, adaptor=self.adaptor,
            pacer_factory=self.pacer_factory,
        )
        await endpoint.open(host, port)
        return _UdtListener(endpoint)

    async def connect(self, remote: Endpoint, hello: bytes) -> UdtLiteConnection:
        endpoint = UdtLiteEndpoint(
            loss_fn=self.loss_fn, initial_rate=self.initial_rate,
            adaptor=self.adaptor, pacer_factory=self.pacer_factory,
        )
        await endpoint.open("0.0.0.0", 0)
        resume = remote in self._sessions
        if resume:
            # A failed resume must fall back to a full handshake next time.
            endpoint.on_resume_failed = self._sessions.discard
            self.zero_rtt_resumes += 1
        conn = await endpoint.dial(remote, hello, resume=resume)
        self._sessions.add(remote)
        conn.owns_endpoint = True  # dialling side: socket dies with the conn
        return conn
