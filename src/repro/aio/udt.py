"""UDT-lite: reliable, ordered framing over UDP with DAIMD rate pacing.

A compact re-implementation of UDT's behaviour class (Gu & Grossman,
Computer Networks 2007) sufficient for the middleware:

* DATA packets carry a u32 sequence number and <= MSS payload bytes;
  frames are length-prefixed and split across packets.
* The receiver sends cumulative ACKs on a 10 ms timer (UDT's SYN
  interval) and immediate NAKs when it observes sequence gaps.
* The sender paces packets at ``rate`` bytes/s, increases the rate every
  SYN interval (probing toward a configurable estimate) and applies UDT's
  multiplicative decrease (x 8/9) on NAK or retransmission timeout.
* Handshake packets exchange the middleware hello and are retransmitted
  until acknowledged.

A per-endpoint ``loss_fn`` hook lets tests drop outgoing DATA packets
deterministically to exercise the NAK/retransmission machinery on a
loopback socket.
"""

from __future__ import annotations

import asyncio
import struct
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.aio.transport import (
    AioConnection,
    AioListener,
    AioTransport,
    ConnectionHandler,
    Endpoint,
)

HEADER = struct.Struct(">BI")  # packet type, sequence/field
LENGTH = struct.Struct(">I")  # frame length prefix inside the byte stream

HANDSHAKE = 1
HANDSHAKE_ACK = 2
DATA = 3
ACK = 4
NAK = 5
CLOSE = 6

MSS = 1200  # payload bytes per DATA packet
SYN_INTERVAL = 0.01  # UDT's fixed rate-control period
DECREASE = 8.0 / 9.0
RTO = 0.25
FLIGHT_WINDOW = 2048  # max unacked packets
MAX_NAK_BATCH = 128


class UdtLiteConnection(AioConnection):
    """One reliable peer relationship multiplexed over an endpoint."""

    def __init__(
        self,
        endpoint: "UdtLiteEndpoint",
        remote: Endpoint,
        initial_rate: float = 2 * 1024 * 1024,
        max_rate: float = 512 * 1024 * 1024,
    ) -> None:
        super().__init__()
        self.endpoint = endpoint
        self.remote = remote
        self.rate = initial_rate
        self.max_rate = max_rate

        # sender state
        self._next_seq = 0
        self._unacked: "OrderedDict[int, bytes]" = OrderedDict()
        self._fresh: Deque[Tuple[int, bytes]] = deque()
        self._retransmit: Deque[int] = deque()
        self._work = asyncio.Event()
        self._all_acked = asyncio.Event()
        self._all_acked.set()
        self._last_progress = time.monotonic()
        self._last_increase = time.monotonic()
        self.retransmissions = 0
        self.naks_received = 0

        # receiver state
        self._expected = 0
        self._ooo: Dict[int, bytes] = {}
        self._stream = bytearray()
        self._last_acked_to_peer = -1

        self._tasks = [
            asyncio.ensure_future(self._pacing_loop()),
            asyncio.ensure_future(self._ack_loop()),
        ]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    async def send_frame(self, data: bytes) -> None:
        stream = LENGTH.pack(len(data)) + data
        for offset in range(0, len(stream), MSS):
            seq = self._next_seq
            self._next_seq += 1
            self._fresh.append((seq, bytes(stream[offset:offset + MSS])))
        self._all_acked.clear()
        self._work.set()

    async def drain(self) -> None:
        await self._all_acked.wait()

    async def _pacing_loop(self) -> None:
        while not self.closed:
            if not self._retransmit and (not self._fresh or len(self._unacked) >= FLIGHT_WINDOW):
                self._work.clear()
                try:
                    await asyncio.wait_for(self._work.wait(), timeout=RTO)
                except asyncio.TimeoutError:
                    self._check_timeout()
                    continue
            self._maybe_increase_rate()
            packet = self._pop_next()
            if packet is None:
                continue
            seq, payload = packet
            self.endpoint._send_packet(DATA, seq, payload, self.remote)
            await asyncio.sleep(len(payload) / self.rate)

    def _pop_next(self) -> Optional[Tuple[int, bytes]]:
        while self._retransmit:
            seq = self._retransmit.popleft()
            payload = self._unacked.get(seq)
            if payload is not None:
                self.retransmissions += 1
                return seq, payload
        if self._fresh and len(self._unacked) < FLIGHT_WINDOW:
            seq, payload = self._fresh.popleft()
            self._unacked[seq] = payload
            return seq, payload
        return None

    def _maybe_increase_rate(self) -> None:
        now = time.monotonic()
        if now - self._last_increase >= SYN_INTERVAL:
            self.rate = min(self.rate + max(self.rate * 0.05, 10 * MSS), self.max_rate)
            self._last_increase = now

    def _check_timeout(self) -> None:
        if self._unacked and time.monotonic() - self._last_progress > RTO:
            oldest = next(iter(self._unacked))
            self._retransmit.appendleft(oldest)
            self.rate = max(self.rate * DECREASE, 64 * 1024)
            self._last_progress = time.monotonic()
            self._work.set()

    def _on_ack(self, cum: int) -> None:
        progressed = False
        while self._unacked and next(iter(self._unacked)) < cum:
            self._unacked.popitem(last=False)
            progressed = True
        if progressed:
            self._last_progress = time.monotonic()
            self._work.set()
        if not self._unacked and not self._fresh and not self._retransmit:
            self._all_acked.set()

    def _on_nak(self, seqs) -> None:
        self.naks_received += 1
        for seq in seqs:
            if seq in self._unacked and seq not in self._retransmit:
                self._retransmit.append(seq)
        self.rate = max(self.rate * DECREASE, 64 * 1024)
        self._work.set()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_data(self, seq: int, payload: bytes) -> None:
        if seq < self._expected:
            return  # duplicate
        if seq > self._expected:
            if seq not in self._ooo:
                self._ooo[seq] = payload
                missing = [s for s in range(self._expected, min(seq, self._expected + MAX_NAK_BATCH))
                           if s not in self._ooo]
                if missing:
                    self.endpoint._send_packet(
                        NAK, len(missing),
                        b"".join(LENGTH.pack(s) for s in missing),
                        self.remote,
                    )
            return
        self._consume(payload)
        while self._expected in self._ooo:
            self._consume(self._ooo.pop(self._expected))

    def _consume(self, payload: bytes) -> None:
        self._expected += 1
        self._stream.extend(payload)
        while len(self._stream) >= LENGTH.size:
            (length,) = LENGTH.unpack_from(self._stream)
            if len(self._stream) < LENGTH.size + length:
                break
            frame = bytes(self._stream[LENGTH.size:LENGTH.size + length])
            del self._stream[:LENGTH.size + length]
            self._deliver(frame)

    async def _ack_loop(self) -> None:
        while not self.closed:
            await asyncio.sleep(SYN_INTERVAL)
            if self._expected - 1 != self._last_acked_to_peer:
                self._last_acked_to_peer = self._expected - 1
                self.endpoint._send_packet(ACK, self._expected, b"", self.remote)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        if not self.closed:
            self.endpoint._send_packet(CLOSE, 0, b"", self.remote)
        self._teardown()

    def _teardown(self) -> None:
        for task in self._tasks:
            task.cancel()
        self.endpoint._forget(self.remote)
        if getattr(self, "owns_endpoint", False) and self.endpoint._transport is not None:
            self.endpoint._transport.close()
            self.endpoint._transport = None
        self._closed()


class _UdtProtocol(asyncio.DatagramProtocol):
    def __init__(self, endpoint: "UdtLiteEndpoint") -> None:
        self.endpoint = endpoint

    def connection_made(self, transport) -> None:  # pragma: no cover - asyncio hook
        self.endpoint._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.endpoint._on_packet(bytes(data), (addr[0], addr[1]))


class UdtLiteEndpoint:
    """One UDP socket multiplexing UDT-lite connections by peer address."""

    def __init__(
        self,
        on_connection: Optional[ConnectionHandler] = None,
        loss_fn: Optional[Callable[[int], bool]] = None,
        initial_rate: float = 2 * 1024 * 1024,
    ) -> None:
        self.on_connection = on_connection
        self.loss_fn = loss_fn
        self.initial_rate = initial_rate
        self.connections: Dict[Endpoint, UdtLiteConnection] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._handshake_acks: Dict[Endpoint, asyncio.Event] = {}
        self.local: Optional[Endpoint] = None

    async def open(self, host: str, port: int) -> Endpoint:
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdtProtocol(self), local_addr=(host, port)
        )
        sock = self._transport.get_extra_info("sockname")
        self.local = (sock[0], sock[1])
        return self.local

    # ------------------------------------------------------------------
    # packet I/O
    # ------------------------------------------------------------------
    def _send_packet(self, ptype: int, field: int, payload: bytes, remote: Endpoint) -> None:
        if self._transport is None:
            return
        if ptype == DATA and self.loss_fn is not None and self.loss_fn(field):
            return  # injected loss (tests)
        self._transport.sendto(HEADER.pack(ptype, field) + payload, remote)

    def _on_packet(self, data: bytes, src: Endpoint) -> None:
        if len(data) < HEADER.size:
            return
        ptype, field = HEADER.unpack_from(data)
        payload = data[HEADER.size:]
        if ptype == HANDSHAKE:
            conn = self.connections.get(src)
            if conn is None:
                conn = UdtLiteConnection(self, src, initial_rate=self.initial_rate)
                conn.peer_hello = payload
                self.connections[src] = conn
                if self.on_connection is not None:
                    self.on_connection(conn)
            self._send_packet(HANDSHAKE_ACK, 0, b"", src)
            return
        if ptype == HANDSHAKE_ACK:
            event = self._handshake_acks.get(src)
            if event is not None:
                event.set()
            return
        conn = self.connections.get(src)
        if conn is None:
            return
        if ptype == DATA:
            conn._on_data(field, payload)
        elif ptype == ACK:
            conn._on_ack(field)
        elif ptype == NAK:
            seqs = [LENGTH.unpack_from(payload, i * 4)[0] for i in range(field)
                    if (i + 1) * 4 <= len(payload)]
            conn._on_nak(seqs)
        elif ptype == CLOSE:
            conn._teardown()

    # ------------------------------------------------------------------
    # client-side establishment
    # ------------------------------------------------------------------
    async def dial(self, remote: Endpoint, hello: bytes, timeout: float = 5.0) -> UdtLiteConnection:
        event = asyncio.Event()
        self._handshake_acks[remote] = event
        conn = UdtLiteConnection(self, remote, initial_rate=self.initial_rate)
        self.connections[remote] = conn
        deadline = time.monotonic() + timeout
        try:
            while True:
                self._send_packet(HANDSHAKE, 0, hello, remote)
                try:
                    await asyncio.wait_for(event.wait(), timeout=0.2)
                    return conn
                except asyncio.TimeoutError:
                    if time.monotonic() > deadline:
                        conn._teardown()
                        raise ConnectionError(f"UDT-lite handshake to {remote} timed out")
        finally:
            self._handshake_acks.pop(remote, None)

    def _forget(self, remote: Endpoint) -> None:
        self.connections.pop(remote, None)

    async def close(self) -> None:
        for conn in list(self.connections.values()):
            await conn.close()
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class _UdtListener(AioListener):
    def __init__(self, endpoint: UdtLiteEndpoint) -> None:
        self.endpoint = endpoint

    async def close(self) -> None:
        await self.endpoint.close()


class UdtLiteTransport(AioTransport):
    """AioTransport facade over :class:`UdtLiteEndpoint`."""

    name = "udt"

    def __init__(self, initial_rate: float = 2 * 1024 * 1024,
                 loss_fn: Optional[Callable[[int], bool]] = None) -> None:
        self.initial_rate = initial_rate
        self.loss_fn = loss_fn

    async def listen(self, host: str, port: int, on_connection: ConnectionHandler) -> AioListener:
        endpoint = UdtLiteEndpoint(
            on_connection=on_connection, loss_fn=self.loss_fn, initial_rate=self.initial_rate
        )
        await endpoint.open(host, port)
        return _UdtListener(endpoint)

    async def connect(self, remote: Endpoint, hello: bytes) -> UdtLiteConnection:
        endpoint = UdtLiteEndpoint(loss_fn=self.loss_fn, initial_rate=self.initial_rate)
        await endpoint.open("0.0.0.0", 0)
        conn = await endpoint.dial(remote, hello)
        conn.owns_endpoint = True  # dialling side: socket dies with the conn
        return conn
