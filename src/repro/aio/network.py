"""AioNetwork: the NettyNetwork sibling for real sockets.

Provides the same Kompics ``Network`` port semantics — per-message
transport choice, lazy channel establishment with reuse via the handshake
hello, MessageNotify on sent, same-instance reflection — but executes on
an asyncio event loop running in a dedicated thread, for use with
``KompicsSystem.threaded()``.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.aio.tcp import TcpTransport
from repro.aio.transport import AioConnection, AioListener, Endpoint
from repro.aio.udp import UdpEndpoint
from repro.aio.udt import UdtLiteTransport
from repro.errors import SerializationError, TransportError
from repro.kompics.component import ComponentDefinition
from repro.messaging.address import Address
from repro.messaging.compression import CompressionCodec, NoCompression
from repro.messaging.message import Msg
from repro.messaging.network_port import MessageNotify, Network
from repro.messaging.serialization import SerializerRegistry, pack_address, unpack_address
from repro.messaging.transport import Transport

DEFAULT_PROTOCOLS = (Transport.TCP, Transport.UDP, Transport.UDT)


class AioNetwork(ComponentDefinition):
    """Network component over real asyncio transports."""

    def __init__(
        self,
        self_address: Address,
        protocols: Iterable[Transport] = DEFAULT_PROTOCOLS,
        serializers: Optional[SerializerRegistry] = None,
        compression: Optional[CompressionCodec] = None,
        bind_ip: Optional[str] = None,
        udt_loss_fn: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__()
        self.net = self.provides(Network)
        self.self_address = self_address
        self.protocols = tuple(protocols)
        for transport in self.protocols:
            if not transport.is_wire_protocol:
                raise TransportError("DATA is a pseudo-protocol; listen on TCP/UDP/UDT")
        self.serializers = serializers if serializers is not None else SerializerRegistry()
        self.compression = compression if compression is not None else NoCompression()
        self.buffer_size = self.config.get_int("messaging.buffer_size", 65536)
        self.bind_ip = bind_ip if bind_ip is not None else self_address.ip
        # Real UDT multiplexes over a UDP socket, so it cannot share the
        # instance port with the plain-UDP listener: by convention it binds
        # (and dials) port + offset.  The simulated stack keys listeners by
        # (port, protocol) and does not need this.
        self.udt_port_offset = self.config.get_int("messaging.aio.udt_port_offset", 1)
        self._hello = pack_address(self_address)

        self._tcp = TcpTransport()
        self._udt = UdtLiteTransport(loss_fn=udt_loss_fn)
        self._udp: Optional[UdpEndpoint] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listeners: list[AioListener] = []
        #: (remote socket, transport) -> future resolving to AioConnection
        self._channels: Dict[Tuple[Endpoint, Transport], "asyncio.Future[AioConnection]"] = {}
        self._ready = threading.Event()
        self.counters = {"sent": 0, "received": 0, "reflected": 0, "send_failures": 0}

        self.subscribe(self.net, MessageNotify.Req, self._on_notify_request)
        self.subscribe(self.net, Msg, self._on_msg_request)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, name=f"{self.name}-loop", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._setup(), self._loop)
        future.result(timeout=10.0)
        self._ready.set()

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _setup(self) -> None:
        port = self.self_address.port
        if Transport.TCP in self.protocols:
            self._listeners.append(await self._tcp.listen(self.bind_ip, port, self._accept(Transport.TCP)))
        if Transport.UDT in self.protocols:
            self._listeners.append(
                await self._udt.listen(
                    self.bind_ip, port + self.udt_port_offset, self._accept(Transport.UDT)
                )
            )
        if Transport.UDP in self.protocols:
            self._udp = UdpEndpoint()
            await self._udp.open(self.bind_ip, port, self._on_datagram)

    def on_kill(self) -> None:
        if self._loop is None:
            return

        async def teardown() -> None:
            for listener in self._listeners:
                await listener.close()
            for future in list(self._channels.values()):
                if future.done() and not future.exception():
                    await future.result().close()
            if self._udp is not None:
                await self._udp.close()

        try:
            asyncio.run_coroutine_threadsafe(teardown(), self._loop).result(timeout=5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # send path (component thread)
    # ------------------------------------------------------------------
    def _on_msg_request(self, msg: Msg) -> None:
        self._send(msg, None)

    def _on_notify_request(self, req: MessageNotify.Req) -> None:
        def report(success: bool, size: int) -> None:
            self.trigger(MessageNotify.Resp(req.notify_id, success, self.clock.now(), size), self.net)

        self._send(req.msg, report)

    def _send(self, msg: Msg, report: Optional[Callable[[bool, int], None]]) -> None:
        transport = msg.header.protocol
        if not transport.is_wire_protocol:
            raise TransportError("Transport.DATA requires a DataNetwork interceptor")
        if transport not in self.protocols:
            raise TransportError(f"{transport.value} not enabled on {self.name}")
        destination = msg.header.destination
        if destination.as_socket() == self.self_address.as_socket():
            self.counters["reflected"] += 1
            self.trigger(msg, self.net)
            if report is not None:
                report(True, 0)
            return

        frame = self.compression.compress(self.serializers.serialize(msg))
        if len(frame) > self.buffer_size:
            raise SerializationError(
                f"message of {len(frame)} bytes exceeds the {self.buffer_size} byte buffer"
            )
        assert self._loop is not None, "component not started"
        asyncio.run_coroutine_threadsafe(
            self._async_send(destination.as_socket(), transport, frame, report), self._loop
        )

    async def _async_send(
        self,
        remote: Endpoint,
        transport: Transport,
        frame: bytes,
        report: Optional[Callable[[bool, int], None]],
    ) -> None:
        try:
            if transport is Transport.UDP:
                assert self._udp is not None
                self._udp.send(frame, remote)
            else:
                conn = await self._channel(remote, transport)
                await conn.send_frame(frame)
            self.counters["sent"] += 1
            if report is not None:
                report(True, len(frame))
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.counters["send_failures"] += 1
            self._channels.pop((remote, transport), None)
            if report is not None:
                report(False, len(frame))

    async def _channel(self, remote: Endpoint, transport: Transport) -> AioConnection:
        key = (remote, transport)
        future = self._channels.get(key)
        if future is not None:
            if not future.done() or not future.exception():
                conn = await asyncio.shield(future)
                if not conn.closed:
                    return conn
            self._channels.pop(key, None)

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._channels[key] = future
        try:
            if transport is Transport.TCP:
                driver, target = self._tcp, remote
            else:
                driver, target = self._udt, (remote[0], remote[1] + self.udt_port_offset)
            conn = await driver.connect(target, self._hello)
            self._wire_connection(conn, key)
            future.set_result(conn)
            return conn
        except BaseException as exc:
            self._channels.pop(key, None)
            future.set_exception(exc)
            # The exception is re-raised to the caller; mark it retrieved.
            future.exception()
            raise

    # ------------------------------------------------------------------
    # receive path (loop thread)
    # ------------------------------------------------------------------
    def _accept(self, transport: Transport) -> Callable[[AioConnection], None]:
        def on_connection(conn: AioConnection) -> None:
            key: Optional[Tuple[Endpoint, Transport]] = None
            if conn.peer_hello:
                peer_addr, _ = unpack_address(conn.peer_hello)
                key = (peer_addr.as_socket(), transport)
                existing = self._channels.get(key)
                if existing is None or (existing.done() and (
                        existing.exception() or existing.result().closed)):
                    loop = asyncio.get_running_loop()
                    future = loop.create_future()
                    future.set_result(conn)
                    self._channels[key] = future
            self._wire_connection(conn, key)

        return on_connection

    def _wire_connection(self, conn: AioConnection, key: Optional[Tuple[Endpoint, Transport]]) -> None:
        conn.on_frame = self._on_frame
        if key is not None:
            def on_closed(c: AioConnection) -> None:
                future = self._channels.get(key)
                if future is not None and future.done() and not future.exception() \
                        and future.result() is c:
                    self._channels.pop(key, None)

            conn.on_closed = on_closed

    def _on_frame(self, frame: bytes) -> None:
        msg = self.serializers.deserialize(self.compression.decompress(frame))
        self.counters["received"] += 1
        self.trigger(msg, self.net)

    def _on_datagram(self, frame: bytes, src: Endpoint) -> None:
        self._on_frame(frame)
