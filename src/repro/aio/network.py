"""AioNetwork: the NettyNetwork sibling for real sockets.

Provides the same Kompics ``Network`` port semantics — per-message
transport choice, lazy channel establishment with reuse via the handshake
hello, MessageNotify on sent, same-instance reflection — but executes on
an asyncio event loop running in a dedicated thread, for use with
``KompicsSystem.threaded()``.

Production behaviours layered on top of the raw transports:

* **Frame batching**: the component thread serializes and enqueues;
  a per-(remote, transport) drainer task on the loop thread coalesces
  whatever has accumulated into one vectored ``send_frames`` call
  (one writer hand-off + drain per batch on TCP, one pacing-loop wakeup
  on UDT-lite).
* **Send-path safety**: an oversized frame or a disabled transport fails
  the message — ``MessageNotify.Resp(success=False)`` plus a
  ``send_failures`` bump — instead of faulting the component and leaking
  the pending notify.
* **Channel recovery**: a failed send drops the channel and retries the
  dial (``messaging.aio.redial_attempts``) on the capped-exponential
  backoff schedule of :class:`~repro.messaging.recovery.ReconnectPolicy`
  (``messaging.reconnect.*`` keys, gated by ``messaging.aio.backoff``)
  so redial storms after a peer crash back off instead of thundering;
  after ``messaging.aio.down_after`` consecutive batch failures the
  component publishes ``TransportStatus.Down`` so the adaptive selector
  steers away, and ``TransportStatus.Up`` once traffic flows again.
* **Network epochs & crash-recovery**: every (re)start of the component
  draws a fresh, process-monotonic *epoch*; outgoing frames carry an
  ``(epoch, seq)`` header and receivers suppress duplicates through a
  bounded per-peer delivery window (``messaging.aio.dedup_window``).
  Under supervision RESTART the old instance tears down leak-free and —
  with ``messaging.aio.redelivery = at-least-once`` — stashes its queued
  and in-flight sends on the surviving core, which the successor
  instance re-enqueues in ``on_start``; the epoch fence plus the dedup
  window make the resend safe even when part of the old batch already
  reached the wire (e.g. over a resumed UDT session cache).  The default
  ``at-most-once`` fails pending sends across the restart, exactly like
  a plain kill.
* **Observability**: the same ``messaging.*`` counter families as
  NettyNetwork, so ``repro.obs`` snapshots read identically across the
  simulated and real backends; with :mod:`repro.check` enabled the
  ``aio.epoch`` and ``aio.nodup`` invariants verify the recovery path.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.aio.pacing import pacer_by_name
from repro.aio.tcp import TcpTransport
from repro.aio.transport import AioConnection, AioListener, AioTransport, Endpoint
from repro.aio.udp import UdpEndpoint
from repro.aio.udt import UdtLiteTransport
from repro.check import get_checker
from repro.errors import AioStartupError, TransportError
from repro.kompics.component import ComponentDefinition
from repro.messaging.address import Address
from repro.messaging.compression import CompressionCodec, NoCompression
from repro.messaging.message import Msg
from repro.messaging.network_port import MessageNotify, Network, TransportStatus
from repro.messaging.recovery import ReconnectPolicy
from repro.messaging.serialization import SerializerRegistry, pack_address, unpack_address
from repro.messaging.transport import Transport
from repro.obs import get_registry, get_tracer

DEFAULT_PROTOCOLS = (Transport.TCP, Transport.UDP, Transport.UDT)

#: (frame bytes, optional report callback) queued towards one channel
_QueuedSend = Tuple[bytes, Optional[Callable[[bool, int], None]]]

#: wire prefix on every aio frame: (network epoch, per-channel sequence)
EPOCH_HEADER = struct.Struct(">II")

#: redelivery knob values for ``messaging.aio.redelivery``
AT_MOST_ONCE = "at-most-once"
AT_LEAST_ONCE = "at-least-once"

#: process-monotonic epoch source: every AioNetwork (re)start draws the
#: next value, so a supervised restart is guaranteed a strictly larger
#: epoch than its predecessor without persisting anything.
_epoch_counter = itertools.count(1)


def next_network_epoch() -> int:
    """Allocate the next network epoch (monotonic per process)."""
    return next(_epoch_counter)


class _DedupWindow:
    """Bounded set of ``(epoch, seq)`` pairs seen from one peer.

    Admission is exact while a pair is inside the window; once more than
    ``limit`` newer pairs arrived the oldest entries are forgotten, which
    bounds memory under long-lived flows.  A re-sent frame therefore has
    to be delayed by more than ``limit`` fresher frames to slip through —
    far beyond what a crash-restart resend can produce.
    """

    __slots__ = ("limit", "_seen", "_order")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._seen: Set[Tuple[int, int]] = set()
        self._order: Deque[Tuple[int, int]] = deque()

    def admit(self, epoch: int, seq: int) -> bool:
        """True if this (epoch, seq) was not seen before (and record it)."""
        key = (epoch, seq)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._order.append(key)
        if len(self._order) > self.limit:
            self._seen.discard(self._order.popleft())
        return True

    def __len__(self) -> int:
        return len(self._order)


class AioNetwork(ComponentDefinition):
    """Network component over real asyncio transports."""

    def __init__(
        self,
        self_address: Address,
        protocols: Iterable[Transport] = DEFAULT_PROTOCOLS,
        serializers: Optional[SerializerRegistry] = None,
        compression: Optional[CompressionCodec] = None,
        bind_ip: Optional[str] = None,
        udt_loss_fn: Optional[Callable[[int], bool]] = None,
        udt_adaptor: Optional[object] = None,
        udp_adaptor: Optional[object] = None,
    ) -> None:
        super().__init__()
        self.net = self.provides(Network)
        self.self_address = self_address
        self.protocols = tuple(protocols)
        for transport in self.protocols:
            if not transport.is_wire_protocol:
                raise TransportError("DATA is a pseudo-protocol; listen on TCP/UDP/UDT")
        self.serializers = serializers if serializers is not None else SerializerRegistry()
        self.compression = compression if compression is not None else NoCompression()
        self.buffer_size = self.config.get_int("messaging.buffer_size", 65536)
        self.bind_ip = bind_ip if bind_ip is not None else self_address.ip
        # Real UDT multiplexes over a UDP socket, so it cannot share the
        # instance port with the plain-UDP listener: by convention it binds
        # (and dials) port + offset.  The simulated stack keys listeners by
        # (port, protocol) and does not need this.
        self.udt_port_offset = self.config.get_int("messaging.aio.udt_port_offset", 1)
        #: extra dial attempts after a channel-establishment failure
        self.redial_attempts = self.config.get_int("messaging.aio.redial_attempts", 1)
        #: consecutive failed batches before TransportStatus.Down is published
        self.down_after = self.config.get_int("messaging.aio.down_after", 3)
        #: what happens to queued/in-flight sends across a supervised restart
        self.redelivery = self.config.get_str("messaging.aio.redelivery", AT_MOST_ONCE)
        if self.redelivery not in (AT_MOST_ONCE, AT_LEAST_ONCE):
            raise TransportError(
                f"messaging.aio.redelivery must be {AT_MOST_ONCE!r} or "
                f"{AT_LEAST_ONCE!r}, not {self.redelivery!r}"
            )
        #: per-peer (epoch, seq) delivery-window size for duplicate suppression
        self.dedup_window = self.config.get_int("messaging.aio.dedup_window", 4096)
        #: at-least-once only: bound on waiting for transport-level ACKs
        #: before a batch may be reported sent
        self.ack_timeout = self.config.get_float("messaging.aio.ack_timeout", 30.0)
        #: capped-exponential backoff between redials (shared with the
        #: simulated ChannelPool's reconnect campaigns)
        self.reconnect_policy = ReconnectPolicy.from_config(self.config)
        self._backoff_enabled = self.config.get_bool("messaging.aio.backoff", True)
        self._backoff_rng = self.rng("aio-backoff")
        self._hello = pack_address(self_address)
        #: this instance's network epoch, stamped into every outgoing frame
        self.epoch = next_network_epoch()

        #: pacing policy for the UDT-lite datapath, by registry name —
        #: the real-socket side of the pluggable congestion-control seam
        #: (see repro.aio.pacing; the default keeps UDT's DAIMD exactly)
        self.cc_policy = self.config.get_str("messaging.aio.cc", "udt")
        self._tcp = TcpTransport()
        self._udt = UdtLiteTransport(
            loss_fn=udt_loss_fn, adaptor=udt_adaptor,
            pacer_factory=pacer_by_name(self.cc_policy),
        )
        self._udp: Optional[UdpEndpoint] = None
        self._udp_adaptor = udp_adaptor
        #: per-transport (driver, port offset) strategy objects — the dial
        #: and listen paths consult this map instead of branching on the
        #: transport kind, so new stream transports are one entry away
        self._drivers: Dict[Transport, Tuple[AioTransport, int]] = {
            Transport.TCP: (self._tcp, 0),
            Transport.UDT: (self._udt, self.udt_port_offset),
        }

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listeners: list[AioListener] = []
        #: (remote socket, transport) -> future resolving to AioConnection
        self._channels: Dict[Tuple[Endpoint, Transport], "asyncio.Future[AioConnection]"] = {}
        #: loop-thread outbound queues, drained in batches per channel
        self._sendq: Dict[Tuple[Endpoint, Transport], Deque[_QueuedSend]] = {}
        self._drainers: Dict[Tuple[Endpoint, Transport], "asyncio.Task"] = {}
        #: consecutive failed batches per channel (recovery bookkeeping)
        self._fail_streak: Dict[Tuple[Endpoint, Transport], int] = {}
        self._down: Set[Tuple[Endpoint, Transport]] = set()
        #: per-(remote socket, transport) outgoing sequence counters
        self._seq: Dict[Tuple[Endpoint, Transport], int] = {}
        #: per-(peer socket, transport) receive-side delivery windows —
        #: one per sender sequence stream (they survive restarts via the
        #: core stash, so a resend after our own crash still dedups)
        self._dedup: Dict[Tuple[Endpoint, Transport], _DedupWindow] = {}
        self._closing = False
        #: set False at the top of on_kill (any thread): late sends fail
        #: fast instead of racing the stopping event loop
        self._accepting = True
        #: non-None during an at-least-once teardown: cancelled drainers
        #: park their in-flight batch here instead of failing it
        self._parked_batches: Optional[List[Tuple[Tuple[Endpoint, Transport], list]]] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.counters = {
            "sent": 0, "received": 0, "reflected": 0, "send_failures": 0,
            "batches": 0, "dups_suppressed": 0, "requeued": 0,
        }

        metrics = get_registry()
        self._obs = metrics.enabled
        self.tracer = get_tracer()
        chk = get_checker()
        self._check = chk if chk.enabled else None
        instance = f"{self_address.ip}:{self_address.port}"
        self._instance = instance
        self._m_sent = {
            t: metrics.counter("messaging.sent_total", transport=t.value)
            for t in self.protocols
        }
        self._m_send_failures = {
            t: metrics.counter("messaging.send_failures_total", transport=t.value)
            for t in self.protocols
        }
        self._m_received = metrics.counter("messaging.received_total", instance=instance)
        self._m_reflected = metrics.counter("messaging.reflected_total", instance=instance)
        self._m_dups = metrics.counter(
            "messaging.aio.dups_suppressed_total", instance=instance
        )
        self._m_requeued = metrics.counter(
            "messaging.aio.requeued_total", instance=instance
        )
        self._m_wire_bytes = metrics.histogram(
            "messaging.serialization.wire_bytes",
            buckets=(64, 256, 1024, 4096, 16384, 65536),
        )
        self._m_batch_frames = metrics.histogram(
            "messaging.aio.batch_frames", buckets=(1, 2, 4, 8, 16, 32, 64)
        )
        if metrics.enabled:
            metrics.gauge("messaging.channels.open", instance=instance).set_function(
                lambda: len(self._channels)
            )

        self.subscribe(self.net, MessageNotify.Req, self._on_notify_request)
        self.subscribe(self.net, Msg, self._on_msg_request)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # A supervised restart stashes recovery state on the surviving
        # core (see on_kill): adopt the delivery windows *before* the
        # listeners bind, so nothing received by the fresh instance can
        # race the adoption, and replay stashed sends once we are up.
        stash: Optional[Dict[str, Any]] = self._core.__dict__.pop("aio_recovery", None)
        if stash is not None:
            self._dedup = stash["dedup"]
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, name=f"{self.name}-loop", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._setup(), self._loop)
        try:
            future.result(timeout=10.0)
        except BaseException as exc:
            # Record the bind/dial error for wait_ready() before faulting
            # the component, and reap the half-started loop thread so the
            # failed instance leaks neither sockets nor a running loop.
            self._startup_error = exc
            self._shutdown_loop(partial=True)
            raise
        self._ready.set()
        if self._check is not None:
            self._check.on_aio_epoch(self._instance, self.epoch)
        self.tracer.event("messaging.aio.start", instance=self._instance, epoch=self.epoch)
        sends = stash["sends"] if stash is not None else ()
        if sends:
            self.counters["requeued"] += len(sends)
            if self._obs:
                self._m_requeued.inc(len(sends))
            self.tracer.event(
                "messaging.aio.redelivery_replay",
                instance=self._instance, epoch=self.epoch, frames=len(sends),
            )

            def replay() -> None:
                for key, frame, report in sends:
                    self._enqueue_send(key, frame, report)

            self._loop.call_soon_threadsafe(replay)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the listeners are bound (threaded-system helper).

        ``KompicsSystem.threaded`` delivers Start events asynchronously,
        so a peer may dial before this instance's listeners exist; test
        and bench harnesses wait on this instead of sleeping.

        Raises :class:`~repro.errors.AioStartupError` — with the
        underlying bind/dial exception attached as ``__cause__`` — if the
        network failed to come up or did not become ready within
        ``timeout``, instead of leaving the caller to hang on a network
        whose event-loop thread died during startup.
        """
        if self._ready.wait(timeout):
            return True
        raise AioStartupError(
            f"{self.name}: aio network not ready after {timeout:.1f}s"
            + (f" (startup failed: {self._startup_error!r})" if self._startup_error else "")
        ) from self._startup_error

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _setup(self) -> None:
        port = self.self_address.port
        for transport in self.protocols:
            entry = self._drivers.get(transport)
            if entry is None:
                continue  # datagram transports open below
            driver, offset = entry
            self._listeners.append(
                await driver.listen(self.bind_ip, port + offset, self._accept(transport))
            )
        if Transport.UDP in self.protocols:
            self._udp = UdpEndpoint(adaptor=self._udp_adaptor)
            await self._udp.open(self.bind_ip, port, self._on_datagram)

    def on_kill(self) -> None:
        if self._loop is None:
            return
        self._accepting = False
        # Under a supervised restart the core survives and a successor
        # instance will run: at-least-once stashes the pending sends for
        # it instead of failing them (the epoch fence + receiver dedup
        # windows make the resend safe); the delivery windows transfer
        # either way, so a peer's own redelivery cannot double-deliver
        # through our restart.
        restarting = self._core.restarting
        redeliver = restarting and self.redelivery == AT_LEAST_ONCE

        async def teardown() -> List[Tuple[Tuple[Endpoint, Transport], bytes, Any]]:
            self._closing = True
            if redeliver:
                self._parked_batches = []
            drainers = list(self._drainers.values())
            for task in drainers:
                task.cancel()
            await asyncio.gather(*drainers, return_exceptions=True)
            self._drainers.clear()
            stash: List[Tuple[Tuple[Endpoint, Transport], bytes, Any]] = []
            if self._parked_batches:
                # In-flight batches first: they were on the wire before
                # anything still queued, so per-key FIFO order survives.
                for key, batch in self._parked_batches:
                    stash.extend((key, frame, report) for frame, report in batch)
            self._parked_batches = None
            # Pending sends must not leak their notifies: stash them for
            # the successor instance (at-least-once) or fail them.
            for key, queue in self._sendq.items():
                while queue:
                    frame, report = queue.popleft()
                    if redeliver:
                        stash.append((key, frame, report))
                    else:
                        self._record_failure(None, report, len(frame))
            self._sendq.clear()
            for listener in self._listeners:
                await listener.close()
            for future in list(self._channels.values()):
                if future.done() and not future.exception():
                    await future.result().close()
                elif not future.done():
                    future.cancel()
            self._channels.clear()
            if self._udp is not None:
                await self._udp.close()
            # One loop cycle so cancelled tasks (drainers, UDT pacing
            # loops) actually unwind before the loop stops.
            await asyncio.sleep(0)
            return stash

        stash: List[Tuple[Tuple[Endpoint, Transport], bytes, Any]] = []
        try:
            stash = asyncio.run_coroutine_threadsafe(teardown(), self._loop).result(timeout=5.0)
        finally:
            self._shutdown_loop()
        if restarting:
            self._core.aio_recovery = {"sends": stash, "dedup": self._dedup}

    def on_fault(self, fault: Any) -> None:
        """Terminal-fault hook: release the sockets and the loop thread.

        Under a supervised restart the ``on_kill`` hook that runs next
        does the orderly teardown (and, at-least-once, stashes pending
        sends for the successor), so there is nothing to do here.  A
        *terminal* fault — restart budget exhausted, escalated to the
        root under ``kompics.fault_policy = store`` — never reaches
        ``on_kill``, so tear down now: pending notifies resolve as
        failures instead of leaking and the event-loop thread exits.
        """
        if self._core.restarting:
            return
        self.on_kill()

    def _shutdown_loop(self, partial: bool = False) -> None:
        """Stop the loop thread and close the loop (idempotent).

        ``partial`` is the startup-failure path: a best-effort async close
        of whatever ``_setup`` managed to bind runs first, so a failed
        bind does not strand the listeners that did come up.
        """
        loop, thread = self._loop, self._thread
        if loop is None:
            return
        if partial:
            async def close_partial() -> None:
                for listener in self._listeners:
                    await listener.close()
                if self._udp is not None:
                    await self._udp.close()

            try:
                asyncio.run_coroutine_threadsafe(close_partial(), loop).result(timeout=2.0)
            except Exception:  # noqa: BLE001 - best effort on a dying loop
                pass
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass
        if thread is not None:
            thread.join(timeout=5.0)
        if thread is None or not thread.is_alive():
            try:
                loop.close()
            except RuntimeError:  # pragma: no cover - defensive
                pass
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------
    # send path (component thread)
    # ------------------------------------------------------------------
    def _on_msg_request(self, msg: Msg) -> None:
        self._send(msg, None)

    def _on_notify_request(self, req: MessageNotify.Req) -> None:
        def report(success: bool, size: int) -> None:
            self.trigger(MessageNotify.Resp(req.notify_id, success, self.clock.now(), size), self.net)

        self._send(req.msg, report)

    def _send(self, msg: Msg, report: Optional[Callable[[bool, int], None]]) -> None:
        transport = msg.header.protocol
        if not transport.is_wire_protocol:
            # A DATA message reaching the network component is a wiring
            # error (the interceptor must stamp a concrete transport), not
            # a runtime condition — keep it loud, like NettyNetwork.
            raise TransportError("Transport.DATA requires a DataNetwork interceptor")
        destination = msg.header.destination
        if destination.as_socket() == self.self_address.as_socket():
            self.counters["reflected"] += 1
            if self._obs:
                self._m_reflected.inc()
            self.trigger(msg, self.net)
            if report is not None:
                report(True, 0)
            return

        # Anything from here on fails the *message*, never the component:
        # a bad send must resolve its pending notify (the interceptor's
        # flow window leaks otherwise) and leave the network healthy.
        if transport not in self.protocols:
            self._record_failure(transport, report, 0)
            self.logger.debug(
                "%s: dropping %s send to %s (transport not enabled)",
                self.name, transport.value, destination,
            )
            return
        payload = self.compression.compress(self.serializers.serialize(msg))
        if len(payload) > self.buffer_size:
            self._record_failure(transport, report, len(payload))
            self.logger.debug(
                "%s: dropping %d byte frame to %s (exceeds %d byte buffer)",
                self.name, len(payload), destination, self.buffer_size,
            )
            return
        if self._obs:
            self._m_wire_bytes.observe(len(payload))
        key = (destination.as_socket(), transport)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        frame = EPOCH_HEADER.pack(self.epoch, seq) + payload
        loop = self._loop
        if not self._accepting or loop is None:
            # Killed (or being restarted) under our feet: fail the
            # message rather than race the stopping event loop.
            self._record_failure(transport, report, len(frame))
            return
        try:
            loop.call_soon_threadsafe(self._enqueue_send, key, frame, report)
        except RuntimeError:
            # The loop closed between the check above and the call —
            # the teardown already flushed the queues, so resolve here.
            self._record_failure(transport, report, len(frame))

    # ------------------------------------------------------------------
    # batching drainers (loop thread)
    # ------------------------------------------------------------------
    def _enqueue_send(
        self,
        key: Tuple[Endpoint, Transport],
        frame: bytes,
        report: Optional[Callable[[bool, int], None]],
    ) -> None:
        if self._closing:
            self._record_failure(key[1], report, len(frame))
            return
        queue = self._sendq.get(key)
        if queue is None:
            queue = self._sendq[key] = deque()
        queue.append((frame, report))
        if key not in self._drainers:
            self._drainers[key] = asyncio.ensure_future(self._drain(key))

    async def _drain(self, key: Tuple[Endpoint, Transport]) -> None:
        """Drain ``key``'s queue until empty, one coalesced batch at a time.

        Everything that accumulated while the previous batch was on the
        wire goes out as a single vectored send — under load the batch
        size grows naturally, amortising the per-send overhead exactly
        like the netsim backend's RX trains.
        """
        remote, transport = key
        try:
            while True:
                queue = self._sendq.get(key)
                if not queue:
                    break
                batch = list(queue)
                queue.clear()
                self.counters["batches"] += 1
                if self._obs:
                    self._m_batch_frames.observe(len(batch))
                if transport is Transport.UDP:
                    self._send_datagrams(key, batch)
                else:
                    try:
                        await self._send_batch(key, batch)
                    except asyncio.CancelledError:
                        # Killed mid-batch: the batch was already popped
                        # from the queue, so nothing else will resolve it.
                        # An at-least-once teardown parks it for the
                        # successor instance (part of it may be on the
                        # wire — the receiver's dedup window absorbs the
                        # resend); otherwise fail its notifies here.
                        if self._parked_batches is not None:
                            self._parked_batches.append((key, batch))
                        else:
                            self._fail_batch(key, batch)
                        raise
        finally:
            self._drainers.pop(key, None)
            # A send may have raced in between the emptiness check and the
            # task teardown: re-arm rather than strand it (unless the
            # component is closing — teardown flushes the queues itself).
            if not self._closing and self._sendq.get(key):
                self._drainers[key] = asyncio.ensure_future(self._drain(key))

    def _send_datagrams(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        remote, _ = key
        assert self._udp is not None
        for frame, report in batch:
            try:
                self._udp.send(frame, remote)
            except OSError:
                self._record_failure(Transport.UDP, report, len(frame), key=key)
            else:
                self._record_success(Transport.UDP, report, len(frame), key=key)

    async def _send_batch(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        remote, transport = key
        frames = [frame for frame, _ in batch]
        conn: Optional[AioConnection] = None
        for attempt in range(self.redial_attempts + 1):
            try:
                conn = await self._channel(remote, transport)
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self._channels.pop(key, None)
                conn = None
            if attempt < self.redial_attempts and self._backoff_enabled:
                # Capped-exponential backoff between redials: a restart
                # storm (many peers redialling a recovering network at
                # once) spreads out instead of thundering.  Cancellation
                # during the sleep propagates to _drain's handler.
                delay = self.reconnect_policy.delay_for(attempt, self._backoff_rng)
                if delay > 0.0:
                    self.tracer.event(
                        "messaging.aio.redial_backoff",
                        remote=f"{remote[0]}:{remote[1]}", proto=transport.value,
                        attempt=attempt, delay=delay,
                    )
                    await asyncio.sleep(delay)
        if conn is None:
            self._fail_batch(key, batch)
            return
        try:
            await conn.send_frames(frames)
            if self.redelivery == AT_LEAST_ONCE:
                # "Sent" must mean *acknowledged* for redelivery to be
                # sound: UDT's send_frames returns once the batch enters
                # the pacing window, and success reported there would let
                # a kill drop un-ACKed packets that nobody ever resends.
                # Waiting here keeps the batch cancellable — a teardown
                # mid-drain parks it for the successor instance, and the
                # receiver's dedup window absorbs the replayed overlap.
                drain = getattr(conn, "drain", None)
                if drain is not None:
                    await asyncio.wait_for(drain(), timeout=self.ack_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            # The batch may be partially on the wire: at-most-once
            # semantics forbid re-sending, so fail it and drop the channel.
            self._channels.pop(key, None)
            self._fail_batch(key, batch)
            return
        for frame, report in batch:
            self._record_success(transport, report, len(frame), key=key)

    def _fail_batch(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        _, transport = key
        for frame, report in batch:
            self._record_failure(transport, report, len(frame), key=key)

    # ------------------------------------------------------------------
    # recovery bookkeeping (TransportStatus Down/Up)
    # ------------------------------------------------------------------
    def _record_success(
        self,
        transport: Transport,
        report: Optional[Callable[[bool, int], None]],
        size: int,
        key: Optional[Tuple[Endpoint, Transport]] = None,
    ) -> None:
        self.counters["sent"] += 1
        if self._obs:
            self._m_sent[transport].inc()
        if key is not None:
            self._fail_streak.pop(key, None)
            if key in self._down:
                self._down.discard(key)
                remote, _ = key
                self.trigger(TransportStatus.Up(remote, transport), self.net)
                self.tracer.event(
                    "messaging.transport_up",
                    remote=f"{remote[0]}:{remote[1]}", proto=transport.value,
                )
        if report is not None:
            report(True, size)

    def _record_failure(
        self,
        transport: Optional[Transport],
        report: Optional[Callable[[bool, int], None]],
        size: int,
        key: Optional[Tuple[Endpoint, Transport]] = None,
    ) -> None:
        self.counters["send_failures"] += 1
        if self._obs and transport is not None and transport in self._m_send_failures:
            self._m_send_failures[transport].inc()
        if key is not None:
            streak = self._fail_streak.get(key, 0) + 1
            self._fail_streak[key] = streak
            if streak >= self.down_after and key not in self._down:
                self._down.add(key)
                remote, _ = key
                assert transport is not None
                self.trigger(
                    TransportStatus.Down(remote, transport, "send failures"), self.net
                )
                self.tracer.event(
                    "messaging.transport_down",
                    remote=f"{remote[0]}:{remote[1]}", proto=transport.value,
                    streak=streak,
                )
        if report is not None:
            report(False, size)

    async def _channel(self, remote: Endpoint, transport: Transport) -> AioConnection:
        key = (remote, transport)
        future = self._channels.get(key)
        if future is not None:
            if not future.done() or not future.exception():
                conn = await asyncio.shield(future)
                if not conn.closed:
                    return conn
            self._channels.pop(key, None)

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._channels[key] = future
        try:
            entry = self._drivers.get(transport)
            if entry is None:
                raise TransportError(f"no stream driver for transport {transport!r}")
            driver, offset = entry
            target = remote if offset == 0 else (remote[0], remote[1] + offset)
            conn = await driver.connect(target, self._hello)
            self._wire_connection(conn, key)
            future.set_result(conn)
            return conn
        except BaseException as exc:
            self._channels.pop(key, None)
            future.set_exception(exc)
            # The exception is re-raised to the caller; mark it retrieved.
            future.exception()
            raise

    # ------------------------------------------------------------------
    # receive path (loop thread)
    # ------------------------------------------------------------------
    def _accept(self, transport: Transport) -> Callable[[AioConnection], None]:
        def on_connection(conn: AioConnection) -> None:
            key: Optional[Tuple[Endpoint, Transport]] = None
            if conn.peer_hello:
                peer_addr, _ = unpack_address(conn.peer_hello)
                key = (peer_addr.as_socket(), transport)
                existing = self._channels.get(key)
                if existing is None or (existing.done() and (
                        existing.exception() or existing.result().closed)):
                    loop = asyncio.get_running_loop()
                    future = loop.create_future()
                    future.set_result(conn)
                    self._channels[key] = future
            self._wire_connection(conn, key)

        return on_connection

    def _wire_connection(self, conn: AioConnection, key: Optional[Tuple[Endpoint, Transport]]) -> None:
        # The dedup identity is the peer's *instance* address (from the
        # dial target or the handshake hello) plus the transport — one
        # window per sender sequence stream, NOT per connection: a
        # crash-restart replaces the connection but must keep folding
        # into the same delivery window.
        conn.on_frame = lambda frame: self._on_frame(frame, key)
        if key is not None:
            def on_closed(c: AioConnection) -> None:
                future = self._channels.get(key)
                if future is not None and future.done() and not future.exception() \
                        and future.result() is c:
                    self._channels.pop(key, None)

            conn.on_closed = on_closed

    def _on_frame(
        self, frame: bytes, key: Optional[Tuple[Endpoint, Transport]] = None
    ) -> None:
        if len(frame) < EPOCH_HEADER.size:
            return  # malformed: shorter than the epoch header
        epoch, seq = EPOCH_HEADER.unpack_from(frame)
        if key is not None:
            window = self._dedup.get(key)
            if window is None:
                window = self._dedup[key] = _DedupWindow(self.dedup_window)
            peer, transport = key
            stream = f"{peer[0]}:{peer[1]}/{transport.value}"
            if not window.admit(epoch, seq):
                self.counters["dups_suppressed"] += 1
                if self._obs:
                    self._m_dups.inc()
                self.tracer.event(
                    "messaging.aio.dup_suppressed",
                    peer=stream, epoch=epoch, seq=seq,
                )
                return
            if self._check is not None:
                self._check.on_aio_delivery(self._instance, stream, epoch, seq)
        msg = self.serializers.deserialize(
            self.compression.decompress(frame[EPOCH_HEADER.size:])
        )
        self.counters["received"] += 1
        if self._obs:
            self._m_received.inc()
        self.trigger(msg, self.net)

    def _on_datagram(self, frame: bytes, src: Endpoint) -> None:
        # The UDP endpoint binds the instance port, so the datagram source
        # *is* the peer's instance address — a stable dedup identity.
        self._on_frame(frame, (src, Transport.UDP))
