"""AioNetwork: the NettyNetwork sibling for real sockets.

Provides the same Kompics ``Network`` port semantics — per-message
transport choice, lazy channel establishment with reuse via the handshake
hello, MessageNotify on sent, same-instance reflection — but executes on
an asyncio event loop running in a dedicated thread, for use with
``KompicsSystem.threaded()``.

Production behaviours layered on top of the raw transports:

* **Frame batching**: the component thread serializes and enqueues;
  a per-(remote, transport) drainer task on the loop thread coalesces
  whatever has accumulated into one vectored ``send_frames`` call
  (one writer hand-off + drain per batch on TCP, one pacing-loop wakeup
  on UDT-lite).
* **Send-path safety**: an oversized frame or a disabled transport fails
  the message — ``MessageNotify.Resp(success=False)`` plus a
  ``send_failures`` bump — instead of faulting the component and leaking
  the pending notify.
* **Channel recovery**: a failed send drops the channel and retries the
  dial (``messaging.aio.redial_attempts``); after
  ``messaging.aio.down_after`` consecutive batch failures the component
  publishes ``TransportStatus.Down`` so the adaptive selector steers
  away, and ``TransportStatus.Up`` once traffic flows again.
* **Observability**: the same ``messaging.*`` counter families as
  NettyNetwork, so ``repro.obs`` snapshots read identically across the
  simulated and real backends.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional, Set, Tuple

from repro.aio.tcp import TcpTransport
from repro.aio.transport import AioConnection, AioListener, Endpoint
from repro.aio.udp import UdpEndpoint
from repro.aio.udt import UdtLiteTransport
from repro.errors import TransportError
from repro.kompics.component import ComponentDefinition
from repro.messaging.address import Address
from repro.messaging.compression import CompressionCodec, NoCompression
from repro.messaging.message import Msg
from repro.messaging.network_port import MessageNotify, Network, TransportStatus
from repro.messaging.serialization import SerializerRegistry, pack_address, unpack_address
from repro.messaging.transport import Transport
from repro.obs import get_registry, get_tracer

DEFAULT_PROTOCOLS = (Transport.TCP, Transport.UDP, Transport.UDT)

#: (frame bytes, optional report callback) queued towards one channel
_QueuedSend = Tuple[bytes, Optional[Callable[[bool, int], None]]]


class AioNetwork(ComponentDefinition):
    """Network component over real asyncio transports."""

    def __init__(
        self,
        self_address: Address,
        protocols: Iterable[Transport] = DEFAULT_PROTOCOLS,
        serializers: Optional[SerializerRegistry] = None,
        compression: Optional[CompressionCodec] = None,
        bind_ip: Optional[str] = None,
        udt_loss_fn: Optional[Callable[[int], bool]] = None,
        udt_adaptor: Optional[object] = None,
        udp_adaptor: Optional[object] = None,
    ) -> None:
        super().__init__()
        self.net = self.provides(Network)
        self.self_address = self_address
        self.protocols = tuple(protocols)
        for transport in self.protocols:
            if not transport.is_wire_protocol:
                raise TransportError("DATA is a pseudo-protocol; listen on TCP/UDP/UDT")
        self.serializers = serializers if serializers is not None else SerializerRegistry()
        self.compression = compression if compression is not None else NoCompression()
        self.buffer_size = self.config.get_int("messaging.buffer_size", 65536)
        self.bind_ip = bind_ip if bind_ip is not None else self_address.ip
        # Real UDT multiplexes over a UDP socket, so it cannot share the
        # instance port with the plain-UDP listener: by convention it binds
        # (and dials) port + offset.  The simulated stack keys listeners by
        # (port, protocol) and does not need this.
        self.udt_port_offset = self.config.get_int("messaging.aio.udt_port_offset", 1)
        #: extra dial attempts after a channel-establishment failure
        self.redial_attempts = self.config.get_int("messaging.aio.redial_attempts", 1)
        #: consecutive failed batches before TransportStatus.Down is published
        self.down_after = self.config.get_int("messaging.aio.down_after", 3)
        self._hello = pack_address(self_address)

        self._tcp = TcpTransport()
        self._udt = UdtLiteTransport(loss_fn=udt_loss_fn, adaptor=udt_adaptor)
        self._udp: Optional[UdpEndpoint] = None
        self._udp_adaptor = udp_adaptor

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listeners: list[AioListener] = []
        #: (remote socket, transport) -> future resolving to AioConnection
        self._channels: Dict[Tuple[Endpoint, Transport], "asyncio.Future[AioConnection]"] = {}
        #: loop-thread outbound queues, drained in batches per channel
        self._sendq: Dict[Tuple[Endpoint, Transport], Deque[_QueuedSend]] = {}
        self._drainers: Dict[Tuple[Endpoint, Transport], "asyncio.Task"] = {}
        #: consecutive failed batches per channel (recovery bookkeeping)
        self._fail_streak: Dict[Tuple[Endpoint, Transport], int] = {}
        self._down: Set[Tuple[Endpoint, Transport]] = set()
        self._closing = False
        self._ready = threading.Event()
        self.counters = {
            "sent": 0, "received": 0, "reflected": 0, "send_failures": 0,
            "batches": 0,
        }

        metrics = get_registry()
        self._obs = metrics.enabled
        self.tracer = get_tracer()
        instance = f"{self_address.ip}:{self_address.port}"
        self._m_sent = {
            t: metrics.counter("messaging.sent_total", transport=t.value)
            for t in self.protocols
        }
        self._m_send_failures = {
            t: metrics.counter("messaging.send_failures_total", transport=t.value)
            for t in self.protocols
        }
        self._m_received = metrics.counter("messaging.received_total", instance=instance)
        self._m_reflected = metrics.counter("messaging.reflected_total", instance=instance)
        self._m_wire_bytes = metrics.histogram(
            "messaging.serialization.wire_bytes",
            buckets=(64, 256, 1024, 4096, 16384, 65536),
        )
        self._m_batch_frames = metrics.histogram(
            "messaging.aio.batch_frames", buckets=(1, 2, 4, 8, 16, 32, 64)
        )
        if metrics.enabled:
            metrics.gauge("messaging.channels.open", instance=instance).set_function(
                lambda: len(self._channels)
            )

        self.subscribe(self.net, MessageNotify.Req, self._on_notify_request)
        self.subscribe(self.net, Msg, self._on_msg_request)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, name=f"{self.name}-loop", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._setup(), self._loop)
        future.result(timeout=10.0)
        self._ready.set()

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the listeners are bound (threaded-system helper).

        ``KompicsSystem.threaded`` delivers Start events asynchronously,
        so a peer may dial before this instance's listeners exist; test
        and bench harnesses wait on this instead of sleeping.
        """
        return self._ready.wait(timeout)

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _setup(self) -> None:
        port = self.self_address.port
        if Transport.TCP in self.protocols:
            self._listeners.append(await self._tcp.listen(self.bind_ip, port, self._accept(Transport.TCP)))
        if Transport.UDT in self.protocols:
            self._listeners.append(
                await self._udt.listen(
                    self.bind_ip, port + self.udt_port_offset, self._accept(Transport.UDT)
                )
            )
        if Transport.UDP in self.protocols:
            self._udp = UdpEndpoint(adaptor=self._udp_adaptor)
            await self._udp.open(self.bind_ip, port, self._on_datagram)

    def on_kill(self) -> None:
        if self._loop is None:
            return

        async def teardown() -> None:
            self._closing = True
            drainers = list(self._drainers.values())
            for task in drainers:
                task.cancel()
            await asyncio.gather(*drainers, return_exceptions=True)
            self._drainers.clear()
            # Pending sends must not leak their notifies: fail them.
            for queue in self._sendq.values():
                while queue:
                    frame, report = queue.popleft()
                    self._record_failure(None, report, len(frame))
            self._sendq.clear()
            for listener in self._listeners:
                await listener.close()
            for future in list(self._channels.values()):
                if future.done() and not future.exception():
                    await future.result().close()
            if self._udp is not None:
                await self._udp.close()
            # One loop cycle so cancelled tasks (drainers, UDT pacing
            # loops) actually unwind before the loop stops.
            await asyncio.sleep(0)

        try:
            asyncio.run_coroutine_threadsafe(teardown(), self._loop).result(timeout=5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # send path (component thread)
    # ------------------------------------------------------------------
    def _on_msg_request(self, msg: Msg) -> None:
        self._send(msg, None)

    def _on_notify_request(self, req: MessageNotify.Req) -> None:
        def report(success: bool, size: int) -> None:
            self.trigger(MessageNotify.Resp(req.notify_id, success, self.clock.now(), size), self.net)

        self._send(req.msg, report)

    def _send(self, msg: Msg, report: Optional[Callable[[bool, int], None]]) -> None:
        transport = msg.header.protocol
        if not transport.is_wire_protocol:
            # A DATA message reaching the network component is a wiring
            # error (the interceptor must stamp a concrete transport), not
            # a runtime condition — keep it loud, like NettyNetwork.
            raise TransportError("Transport.DATA requires a DataNetwork interceptor")
        destination = msg.header.destination
        if destination.as_socket() == self.self_address.as_socket():
            self.counters["reflected"] += 1
            if self._obs:
                self._m_reflected.inc()
            self.trigger(msg, self.net)
            if report is not None:
                report(True, 0)
            return

        # Anything from here on fails the *message*, never the component:
        # a bad send must resolve its pending notify (the interceptor's
        # flow window leaks otherwise) and leave the network healthy.
        if transport not in self.protocols:
            self._record_failure(transport, report, 0)
            self.logger.debug(
                "%s: dropping %s send to %s (transport not enabled)",
                self.name, transport.value, destination,
            )
            return
        frame = self.compression.compress(self.serializers.serialize(msg))
        if len(frame) > self.buffer_size:
            self._record_failure(transport, report, len(frame))
            self.logger.debug(
                "%s: dropping %d byte frame to %s (exceeds %d byte buffer)",
                self.name, len(frame), destination, self.buffer_size,
            )
            return
        if self._obs:
            self._m_wire_bytes.observe(len(frame))
        assert self._loop is not None, "component not started"
        key = (destination.as_socket(), transport)
        self._loop.call_soon_threadsafe(self._enqueue_send, key, frame, report)

    # ------------------------------------------------------------------
    # batching drainers (loop thread)
    # ------------------------------------------------------------------
    def _enqueue_send(
        self,
        key: Tuple[Endpoint, Transport],
        frame: bytes,
        report: Optional[Callable[[bool, int], None]],
    ) -> None:
        if self._closing:
            self._record_failure(key[1], report, len(frame))
            return
        queue = self._sendq.get(key)
        if queue is None:
            queue = self._sendq[key] = deque()
        queue.append((frame, report))
        if key not in self._drainers:
            self._drainers[key] = asyncio.ensure_future(self._drain(key))

    async def _drain(self, key: Tuple[Endpoint, Transport]) -> None:
        """Drain ``key``'s queue until empty, one coalesced batch at a time.

        Everything that accumulated while the previous batch was on the
        wire goes out as a single vectored send — under load the batch
        size grows naturally, amortising the per-send overhead exactly
        like the netsim backend's RX trains.
        """
        remote, transport = key
        try:
            while True:
                queue = self._sendq.get(key)
                if not queue:
                    break
                batch = list(queue)
                queue.clear()
                self.counters["batches"] += 1
                if self._obs:
                    self._m_batch_frames.observe(len(batch))
                if transport is Transport.UDP:
                    self._send_datagrams(key, batch)
                else:
                    try:
                        await self._send_batch(key, batch)
                    except asyncio.CancelledError:
                        # Killed mid-batch (teardown): the batch was already
                        # popped from the queue, so fail its notifies here —
                        # nothing else will ever resolve them.
                        self._fail_batch(key, batch)
                        raise
        finally:
            self._drainers.pop(key, None)
            # A send may have raced in between the emptiness check and the
            # task teardown: re-arm rather than strand it (unless the
            # component is closing — teardown flushes the queues itself).
            if not self._closing and self._sendq.get(key):
                self._drainers[key] = asyncio.ensure_future(self._drain(key))

    def _send_datagrams(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        remote, _ = key
        assert self._udp is not None
        for frame, report in batch:
            try:
                self._udp.send(frame, remote)
            except OSError:
                self._record_failure(Transport.UDP, report, len(frame), key=key)
            else:
                self._record_success(Transport.UDP, report, len(frame), key=key)

    async def _send_batch(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        remote, transport = key
        frames = [frame for frame, _ in batch]
        conn: Optional[AioConnection] = None
        for attempt in range(self.redial_attempts + 1):
            try:
                conn = await self._channel(remote, transport)
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self._channels.pop(key, None)
                conn = None
        if conn is None:
            self._fail_batch(key, batch)
            return
        try:
            await conn.send_frames(frames)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            # The batch may be partially on the wire: at-most-once
            # semantics forbid re-sending, so fail it and drop the channel.
            self._channels.pop(key, None)
            self._fail_batch(key, batch)
            return
        for frame, report in batch:
            self._record_success(transport, report, len(frame), key=key)

    def _fail_batch(self, key: Tuple[Endpoint, Transport], batch: list) -> None:
        _, transport = key
        for frame, report in batch:
            self._record_failure(transport, report, len(frame), key=key)

    # ------------------------------------------------------------------
    # recovery bookkeeping (TransportStatus Down/Up)
    # ------------------------------------------------------------------
    def _record_success(
        self,
        transport: Transport,
        report: Optional[Callable[[bool, int], None]],
        size: int,
        key: Optional[Tuple[Endpoint, Transport]] = None,
    ) -> None:
        self.counters["sent"] += 1
        if self._obs:
            self._m_sent[transport].inc()
        if key is not None:
            self._fail_streak.pop(key, None)
            if key in self._down:
                self._down.discard(key)
                remote, _ = key
                self.trigger(TransportStatus.Up(remote, transport), self.net)
                self.tracer.event(
                    "messaging.transport_up",
                    remote=f"{remote[0]}:{remote[1]}", proto=transport.value,
                )
        if report is not None:
            report(True, size)

    def _record_failure(
        self,
        transport: Optional[Transport],
        report: Optional[Callable[[bool, int], None]],
        size: int,
        key: Optional[Tuple[Endpoint, Transport]] = None,
    ) -> None:
        self.counters["send_failures"] += 1
        if self._obs and transport is not None and transport in self._m_send_failures:
            self._m_send_failures[transport].inc()
        if key is not None:
            streak = self._fail_streak.get(key, 0) + 1
            self._fail_streak[key] = streak
            if streak >= self.down_after and key not in self._down:
                self._down.add(key)
                remote, _ = key
                assert transport is not None
                self.trigger(
                    TransportStatus.Down(remote, transport, "send failures"), self.net
                )
                self.tracer.event(
                    "messaging.transport_down",
                    remote=f"{remote[0]}:{remote[1]}", proto=transport.value,
                    streak=streak,
                )
        if report is not None:
            report(False, size)

    async def _channel(self, remote: Endpoint, transport: Transport) -> AioConnection:
        key = (remote, transport)
        future = self._channels.get(key)
        if future is not None:
            if not future.done() or not future.exception():
                conn = await asyncio.shield(future)
                if not conn.closed:
                    return conn
            self._channels.pop(key, None)

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._channels[key] = future
        try:
            if transport is Transport.TCP:
                driver, target = self._tcp, remote
            else:
                driver, target = self._udt, (remote[0], remote[1] + self.udt_port_offset)
            conn = await driver.connect(target, self._hello)
            self._wire_connection(conn, key)
            future.set_result(conn)
            return conn
        except BaseException as exc:
            self._channels.pop(key, None)
            future.set_exception(exc)
            # The exception is re-raised to the caller; mark it retrieved.
            future.exception()
            raise

    # ------------------------------------------------------------------
    # receive path (loop thread)
    # ------------------------------------------------------------------
    def _accept(self, transport: Transport) -> Callable[[AioConnection], None]:
        def on_connection(conn: AioConnection) -> None:
            key: Optional[Tuple[Endpoint, Transport]] = None
            if conn.peer_hello:
                peer_addr, _ = unpack_address(conn.peer_hello)
                key = (peer_addr.as_socket(), transport)
                existing = self._channels.get(key)
                if existing is None or (existing.done() and (
                        existing.exception() or existing.result().closed)):
                    loop = asyncio.get_running_loop()
                    future = loop.create_future()
                    future.set_result(conn)
                    self._channels[key] = future
            self._wire_connection(conn, key)

        return on_connection

    def _wire_connection(self, conn: AioConnection, key: Optional[Tuple[Endpoint, Transport]]) -> None:
        conn.on_frame = self._on_frame
        if key is not None:
            def on_closed(c: AioConnection) -> None:
                future = self._channels.get(key)
                if future is not None and future.done() and not future.exception() \
                        and future.result() is c:
                    self._channels.pop(key, None)

            conn.on_closed = on_closed

    def _on_frame(self, frame: bytes) -> None:
        msg = self.serializers.deserialize(self.compression.decompress(frame))
        self.counters["received"] += 1
        if self._obs:
            self._m_received.inc()
        self.trigger(msg, self.net)

    def _on_datagram(self, frame: bytes, src: Endpoint) -> None:
        self._on_frame(frame)
