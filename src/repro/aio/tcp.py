"""Length-framed TCP transport on asyncio streams.

Wire format: every frame (including the initial hello) is a 4-byte
big-endian length followed by the payload.  The first frame sent by the
dialling side is its hello; everything after is middleware frames.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional, Sequence

from repro.aio.transport import (
    AioConnection,
    AioListener,
    AioTransport,
    ConnectionHandler,
    Endpoint,
)

LENGTH = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024


class TcpConnection(AioConnection):
    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        super().__init__()
        self._reader = reader
        self._writer = writer
        self._read_task: Optional[asyncio.Task] = None

    def start_reading(self) -> None:
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_frame(self) -> Optional[bytes]:
        try:
            header = await self._reader.readexactly(LENGTH.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        (length,) = LENGTH.unpack(header)
        if length > MAX_FRAME:
            raise ValueError(f"frame of {length} bytes exceeds the {MAX_FRAME} limit")
        try:
            return await self._reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await self._read_frame()
                if frame is None:
                    break
                self._deliver(frame)
        finally:
            self._closed()

    async def send_frame(self, data: bytes) -> None:
        self._writer.write(LENGTH.pack(len(data)) + data)
        await self._writer.drain()

    async def send_frames(self, frames: Sequence[bytes]) -> None:
        # Vectored write: one buffer hand-off and one drain for the whole
        # batch, instead of a write+drain (and likely a syscall) per frame.
        buffers = []
        for data in frames:
            buffers.append(LENGTH.pack(len(data)))
            buffers.append(data)
        self._writer.writelines(buffers)
        await self._writer.drain()

    async def drain(self) -> None:
        await self._writer.drain()

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        self._closed()


class _TcpListener(AioListener):
    def __init__(self, server: asyncio.AbstractServer) -> None:
        self._server = server

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


class TcpTransport(AioTransport):
    name = "tcp"

    async def listen(self, host: str, port: int, on_connection: ConnectionHandler) -> AioListener:
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            conn = TcpConnection(reader, writer)
            hello = await conn._read_frame()
            if hello is None:
                await conn.close()
                return
            conn.peer_hello = hello
            on_connection(conn)
            conn.start_reading()

        server = await asyncio.start_server(handle, host=host, port=port)
        return _TcpListener(server)

    async def connect(self, remote: Endpoint, hello: bytes) -> TcpConnection:
        reader, writer = await asyncio.open_connection(host=remote[0], port=remote[1])
        conn = TcpConnection(reader, writer)
        await conn.send_frame(hello)
        conn.start_reading()
        return conn
