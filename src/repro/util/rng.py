"""Deterministic random-number substreams.

Simulated experiments must be exactly reproducible from a single root seed,
yet independent subsystems (link loss, policy exploration, workload
generation, ...) should not share a stream — otherwise adding a random draw
in one subsystem perturbs every other.  :func:`derive_seed` hashes a root
seed together with a string label into an independent child seed, and
:class:`RngRegistry` caches one :class:`random.Random` per label.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``label``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Per-label random streams derived from one root seed.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.get("link-loss")
    >>> b = rngs.get("policy")
    >>> a is rngs.get("link-loss")
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, label: str) -> random.Random:
        """Return the (cached) stream for ``label``."""
        stream = self._streams.get(label)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, label))
            self._streams[label] = stream
        return stream

    def fork(self, label: str) -> "RngRegistry":
        """Return a child registry rooted at the derived seed for ``label``."""
        return RngRegistry(derive_seed(self.root_seed, label))
