"""Clock abstraction.

All middleware and application code reads time exclusively through a
:class:`Clock` so the same code runs unmodified against the discrete-event
simulator (:class:`SimulatedClock`) and against real time
(:class:`WallClock`).  Times are floating-point seconds.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Read-only time source, in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    def millis(self) -> float:
        """Return the current time in milliseconds."""
        return self.now() * 1000.0


class SimulatedClock(Clock):
    """Clock advanced explicitly by the simulation kernel.

    The kernel owns the instance and moves :attr:`_now` forward; everything
    else holds a read-only reference.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def _advance_to(self, t: float) -> None:
        """Move the clock forward (kernel-internal)."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t


class WallClock(Clock):
    """Monotonic wall-clock time, zeroed at construction."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._t0
