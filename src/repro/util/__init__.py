"""Small shared utilities: clocks, seeded RNG substreams, id generation."""

from repro.util.clock import Clock, SimulatedClock, WallClock
from repro.util.ids import IdGenerator
from repro.util.rng import RngRegistry, derive_seed

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "IdGenerator",
    "RngRegistry",
    "derive_seed",
]
