"""Deterministic id generation.

Components, channels, connections and messages all carry small integer ids
for logging and trace correlation.  A counter per namespace keeps ids dense
and deterministic across runs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator


class IdGenerator:
    """Namespace-scoped monotonically increasing integer ids."""

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}

    def next(self, namespace: str = "") -> int:
        """Return the next id in ``namespace`` (starting at 0)."""
        counter = self._counters.get(namespace)
        if counter is None:
            counter = itertools.count()
            self._counters[namespace] = counter
        return next(counter)
