"""Configurable action arms for the adaptive transport selector.

The paper's selector chooses between exactly two actions — TCP or UDT —
expressed as a ratio.  With congestion control now a registry of named
policies (:data:`repro.netsim.congestion.CC_POLICIES`), the action space
can widen: an *arm* is a congestion-control policy name plus the wire
transport it rides, and :class:`ArmSelection` is a protocol-selection
policy over an arbitrary arm list instead of the binary ratio.

Arms are validated against the congestion registry at construction, so a
typo fails fast with the registry's did-you-mean hint.  The feature is
opt-in via the ``data.arms`` config key (see
:class:`repro.core.interceptor.DataNetworkInterceptor`); without it the
selector keeps the paper's binary TCP↔UDT behaviour untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.psp import ProtocolSelectionPolicy
from repro.core.ratio import ProtocolRatio
from repro.errors import PolicyError
from repro.messaging.transport import Transport
from repro.netsim.congestion import CC_POLICIES

#: wire transport each congestion-control arm rides on (mirrors
#: repro.bench.fleet.ARM_PROTOS); window policies default to TCP
ARM_TRANSPORTS = {"udt": Transport.UDT}


@dataclass(frozen=True)
class Arm:
    """One selectable action: a cc policy name on a wire transport."""

    name: str
    transport: Transport

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}@{self.transport.value}"


def build_arms(names: Union[str, Sequence[str]]) -> Tuple[Arm, ...]:
    """Validate an arm list against the congestion registry.

    ``names`` is a sequence of registry names or one comma-separated
    string (the config-file form).  Unknown names raise the registry's
    :class:`~repro.netsim.congestion.UnknownCcError` with its
    did-you-mean hint.
    """
    if isinstance(names, str):
        names = [n.strip() for n in names.split(",") if n.strip()]
    arms: List[Arm] = []
    for name in names:
        CC_POLICIES.get(name)  # raises UnknownCcError with suggestions
        arms.append(Arm(name, ARM_TRANSPORTS.get(name, Transport.TCP)))
    if not arms:
        raise PolicyError("arm list must name at least one policy")
    return tuple(arms)


class ArmSelection(ProtocolSelectionPolicy):
    """Epsilon-greedy selection over a configurable arm list.

    Per selection: exploit the arm with the best reward estimate with
    probability ``1 − epsilon``, explore uniformly otherwise.  Estimates
    are exponential moving averages fed via :meth:`reward_arm` (the
    episode layer calls it with its reward signal); until any feedback
    arrives the policy round-robins so every arm gets traffic.

    ``set_ratio`` is still accepted for PRP compatibility: the prescribed
    UDT share nudges the exploration draw toward UDT-riding arms, so a
    binary ``(tcp-arm, udt-arm)`` configuration degrades gracefully to
    the paper's ratio behaviour.
    """

    def __init__(
        self,
        arms: Sequence[Arm],
        rng: Optional[random.Random] = None,
        epsilon: float = 0.1,
        ema_alpha: float = 0.2,
        ratio: ProtocolRatio = ProtocolRatio.FIFTY_FIFTY,
    ) -> None:
        super().__init__(ratio)
        if not arms:
            raise PolicyError("ArmSelection needs at least one arm")
        if not 0.0 <= epsilon <= 1.0:
            raise PolicyError("epsilon must be within [0, 1]")
        self.arms: Tuple[Arm, ...] = tuple(arms)
        self.epsilon = epsilon
        self.ema_alpha = ema_alpha
        self._rng = rng if rng is not None else random.Random(0)
        self._estimates: Dict[str, float] = {}
        self._next_rr = 0
        self.selections: Dict[str, int] = {arm.name: 0 for arm in self.arms}
        self.last_arm: Optional[Arm] = None
        self._episode_base: Dict[str, int] = dict(self.selections)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def reward_arm(self, name: str, reward: float) -> None:
        """Fold an observed reward into the arm's EMA estimate."""
        prev = self._estimates.get(name)
        self._estimates[name] = (
            reward if prev is None
            else prev + self.ema_alpha * (reward - prev)
        )

    def estimate(self, name: str) -> Optional[float]:
        return self._estimates.get(name)

    def reward_episode(self, reward: float) -> None:
        """Attribute an episode reward to every arm that carried traffic.

        Called by the episode layer (see ``DestinationFlow.end_episode``)
        with its scalar reward; arms selected since the previous episode
        each fold it into their estimate.  Coarse — arms sharing an
        episode share its reward — but unbiased over many episodes since
        exploration keeps rotating which arms participate.
        """
        for arm in self.arms:
            if self.selections[arm.name] > self._episode_base.get(arm.name, 0):
                self.reward_arm(arm.name, reward)
        self._episode_base = dict(self.selections)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _explore(self) -> Arm:
        # Bias exploration by the prescribed ratio when the arm list
        # spans both transports; uniform otherwise.
        udt_arms = [a for a in self.arms if a.transport is Transport.UDT]
        tcp_arms = [a for a in self.arms if a.transport is not Transport.UDT]
        if udt_arms and tcp_arms:
            pool = udt_arms if self._rng.random() < self._ratio.probability else tcp_arms
        else:
            pool = list(self.arms)
        return pool[self._rng.randrange(len(pool))]

    def _best(self) -> Optional[Arm]:
        best: Optional[Arm] = None
        best_value = -float("inf")
        for arm in self.arms:
            value = self._estimates.get(arm.name)
            if value is not None and value > best_value:
                best, best_value = arm, value
        return best

    def _select_arm(self) -> Arm:
        if self._rng.random() < self.epsilon:
            return self._explore()
        best = self._best()
        if best is None:
            # No feedback yet: round-robin so every arm sees traffic.
            arm = self.arms[self._next_rr % len(self.arms)]
            self._next_rr += 1
            return arm
        return best

    def _select(self) -> Transport:
        arm = self._select_arm()
        self.last_arm = arm
        self.selections[arm.name] += 1
        return arm.transport
