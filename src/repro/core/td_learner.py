"""TDRatioLearner: the reinforcement-learning protocol ratio policy (§IV-C2).

Per destination flow, a Sarsa(λ) learner walks a discretised signed-ratio
grid (step κ = 1/5 by default: 11 states from −1 to +1) using step actions
(0, ±κ, ±2κ by default: 5 actions), with one learning episode per
interceptor tick (1 s).  The value-function representation is pluggable:

* ``"matrix"``  — plain Q(s,a) table, Figure 4 (converges too slowly);
* ``"model"``   — V(s) + transition model, Figure 5 (~20 s);
* ``"approx"``  — model + quadratic extrapolation, Figure 6 (seconds).
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import List, Optional, Union

from repro.core.prp import ProtocolRatioPolicy
from repro.core.ratio import ProtocolRatio
from repro.core.rewards import EpisodeStats, RewardFunction, ThroughputReward
from repro.core.rl import (
    ActionValueFunction,
    EligibilityTraces,
    EpsilonGreedy,
    MatrixQ,
    ModelBasedV,
    QuadraticApproxV,
    SarsaLambda,
    TransitionModel,
)
from repro.errors import PolicyError
from repro.obs import get_registry

#: paper defaults (§IV-C3): matrix needs aggressive exploration,
#: the model-based variants converge with far less (§IV-C4).
DEFAULT_EPSILON_MAX = {"matrix": 0.8, "model": 0.3, "approx": 0.3}


def ratio_states(kappa: Fraction = Fraction(1, 5)) -> List[Fraction]:
    """The signed-ratio grid {−1, −1+κ, ..., 1−κ, 1}."""
    if kappa <= 0 or Fraction(1) % Fraction(kappa) != 0:
        raise PolicyError(f"kappa must evenly divide 1, got {kappa}")
    n = int(Fraction(1) / Fraction(kappa))
    return [Fraction(i, n) for i in range(-n, n + 1)]


def step_actions(kappa: Fraction = Fraction(1, 5), max_step: int = 2) -> List[Fraction]:
    """Step actions {−max_step·κ, ..., 0, ..., +max_step·κ}."""
    if max_step < 1:
        raise PolicyError("max_step must be at least 1")
    return [i * Fraction(kappa) for i in range(-max_step, max_step + 1)]


class TDRatioLearner(ProtocolRatioPolicy):
    """Online Sarsa(λ)-driven ratio policy."""

    def __init__(
        self,
        rng: random.Random,
        value_function: Union[str, ActionValueFunction] = "approx",
        reward_function: Optional[RewardFunction] = None,
        kappa: Fraction = Fraction(1, 5),
        max_step: int = 2,
        alpha: float = 0.5,
        gamma: float = 0.5,
        lam: float = 0.85,
        epsilon_max: Optional[float] = None,
        epsilon_min: float = 0.1,
        epsilon_decay: float = 0.01,
        initial_state: Fraction = Fraction(0),
        trace_kind: str = "replacing",
    ) -> None:
        self.states = ratio_states(kappa)
        self.actions = step_actions(kappa, max_step)
        self.model = TransitionModel(self.states)
        if initial_state not in set(self.states):
            raise PolicyError(f"initial state {initial_state} not on the κ={kappa} grid")

        if isinstance(value_function, str):
            kind = value_function
            if kind == "matrix":
                qfunc: ActionValueFunction = MatrixQ()
            elif kind == "model":
                qfunc = ModelBasedV(self.model)
            elif kind == "approx":
                qfunc = QuadraticApproxV(self.model)
            else:
                raise PolicyError(f"unknown value function kind {kind!r}")
            if epsilon_max is None:
                epsilon_max = DEFAULT_EPSILON_MAX[kind]
        else:
            qfunc = value_function
            if epsilon_max is None:
                epsilon_max = 0.3

        self.qfunc = qfunc
        self.reward_function = reward_function if reward_function is not None else ThroughputReward()
        self.policy = EpsilonGreedy(rng, epsilon_max, epsilon_min, epsilon_decay)
        self.sarsa = SarsaLambda(
            actions=self.actions,
            qfunc=qfunc,
            policy=self.policy,
            transition=self.model.next_state,
            alpha=alpha,
            gamma=gamma,
            lam=lam,
            traces=EligibilityTraces(trace_kind),
        )
        self._initial_state = initial_state
        self._current_state: Optional[Fraction] = None
        self.last_reward: Optional[float] = None

        metrics = get_registry()
        # Registry-scoped instance index keeps labels deterministic across
        # repeated runs against fresh registries (unlike a process counter).
        labels = {"learner": str(len(metrics.family("rl.sarsa.episodes_total")))}
        self._m_episodes = metrics.counter("rl.sarsa.episodes_total", **labels)
        self._m_reward = metrics.gauge("rl.sarsa.reward", **labels)
        if metrics.enabled:
            metrics.gauge("rl.sarsa.td_error", **labels).set_function(
                lambda: self.sarsa.last_delta
                if self.sarsa.last_delta is not None
                else math.nan
            )
            metrics.gauge("rl.policy.epsilon", **labels).set_function(
                lambda: self.policy.epsilon
            )
            metrics.gauge("rl.sarsa.state_signed", **labels).set_function(
                lambda: float(self._current_state)
                if self._current_state is not None
                else math.nan
            )

    # ------------------------------------------------------------------
    # ProtocolRatioPolicy interface
    # ------------------------------------------------------------------
    def initial_ratio(self) -> ProtocolRatio:
        """Initialise s, pick the first action, and prescribe M(s, a)."""
        self._current_state = self.sarsa.begin(self._initial_state)
        return ProtocolRatio.from_signed(self._current_state)

    def update(self, stats: EpisodeStats) -> ProtocolRatio:
        """Fold one episode's reward into the learner; next target ratio."""
        if self._current_state is None:
            return self.initial_ratio()
        reward = self.reward_function(stats)
        self.last_reward = reward
        self._m_episodes.inc()
        self._m_reward.set(reward)
        self._current_state = self.sarsa.step(reward, self._current_state)
        return ProtocolRatio.from_signed(self._current_state)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self.policy.epsilon

    @property
    def current_state(self) -> Optional[Fraction]:
        return self._current_state

    @property
    def episodes(self) -> int:
        return self.sarsa.steps
