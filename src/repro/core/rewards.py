"""Episode statistics and reward functions for the ratio learner (§IV-C2).

The TD learner "uses collected throughput and latency statistics as
rewards".  The interceptor snapshots an :class:`EpisodeStats` per flow per
learning episode; a :class:`RewardFunction` maps it to the scalar the
learner maximises.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

MB = 1024 * 1024


@dataclass(frozen=True)
class EpisodeStats:
    """What one destination flow did during one learning episode."""

    start: float
    duration: float
    bytes_acked: int
    messages_acked: int
    messages_failed: int
    tcp_released: int
    udt_released: int
    total_queue_delay: float  # sum over acked messages, seconds

    @property
    def throughput(self) -> float:
        """Acked bytes per second over the episode."""
        return self.bytes_acked / self.duration if self.duration > 0 else 0.0

    @property
    def mean_queue_delay(self) -> float:
        """Mean enqueue-to-sent delay of acked messages."""
        return self.total_queue_delay / self.messages_acked if self.messages_acked else 0.0

    @property
    def released(self) -> int:
        return self.tcp_released + self.udt_released

    @property
    def true_ratio(self) -> float:
        """Observed signed protocol ratio of the released messages."""
        if self.released == 0:
            return 0.0
        return (self.udt_released - self.tcp_released) / self.released


class RewardFunction(ABC):
    """Maps episode statistics to the learner's scalar reward."""

    @abstractmethod
    def reward(self, stats: EpisodeStats) -> float: ...

    def __call__(self, stats: EpisodeStats) -> float:
        return self.reward(stats)


class ThroughputReward(RewardFunction):
    """Reward = throughput in units of ``scale`` bytes/s (default MB/s)."""

    def __init__(self, scale: float = MB) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def reward(self, stats: EpisodeStats) -> float:
        return stats.throughput / self.scale


class LatencyPenalizedReward(RewardFunction):
    """Throughput reward minus a queue-delay penalty.

    Useful when the flow also carries latency-sensitive traffic; the paper
    mentions latency statistics as a reward input alongside throughput.
    """

    def __init__(self, scale: float = MB, delay_weight: float = 1.0) -> None:
        if scale <= 0 or delay_weight < 0:
            raise ValueError("scale must be positive and delay_weight non-negative")
        self.scale = scale
        self.delay_weight = delay_weight

    def reward(self, stats: EpisodeStats) -> float:
        return stats.throughput / self.scale - self.delay_weight * stats.mean_queue_delay
