"""Protocol-ratio representations and conversions (paper §IV-B).

The target ratio ``r`` between TCP and UDT traffic appears in three forms:

* **signed** ``r ∈ [-1, 1]``: −1 is 100% TCP, 0 a 50-50 mix, +1 100% UDT
  (the paper's analysis/visualisation form);
* **probability** ``u ∈ [0, 1]``: the probability of picking UDT;
* **pattern** ``p/q ∈ Q``: emit ``p`` minority-protocol messages for every
  ``q`` majority-protocol messages, with the majority decided by the sign
  of the signed form.

:class:`ProtocolRatio` stores the probability form exactly (as a
:class:`fractions.Fraction`) and converts on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.errors import RatioError
from repro.messaging.transport import Transport

Rational = Union[int, float, Fraction]


def _to_fraction(value: Rational) -> Fraction:
    """Exact for ints/Fractions; floats are snapped to a small rational."""
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    return Fraction(value)


@dataclass(frozen=True)
class PatternForm:
    """``p`` minority messages per ``q`` majority messages."""

    p: int
    q: int
    minority: Transport
    majority: Transport

    @property
    def total(self) -> int:
        return self.p + self.q


class ProtocolRatio:
    """An exact TCP/UDT mixing ratio."""

    __slots__ = ("_u",)

    def __init__(self, udt_probability: Rational) -> None:
        u = _to_fraction(udt_probability)
        if not 0 <= u <= 1:
            raise RatioError(f"probability form must be in [0, 1], got {u}")
        self._u = u

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_probability(cls, u: Rational) -> "ProtocolRatio":
        return cls(u)

    @classmethod
    def from_signed(cls, r: Rational) -> "ProtocolRatio":
        r = _to_fraction(r)
        if not -1 <= r <= 1:
            raise RatioError(f"signed form must be in [-1, 1], got {r}")
        return cls((r + 1) / 2)

    @classmethod
    def from_pattern(cls, p: int, q: int, majority: Transport = Transport.TCP) -> "ProtocolRatio":
        """``p`` minority messages per ``q`` majority messages."""
        if q <= 0 or p < 0 or p > q:
            raise RatioError(f"pattern form needs 0 <= p <= q, q > 0; got p={p}, q={q}")
        minority_share = Fraction(p, p + q)
        if majority is Transport.TCP:
            return cls(minority_share)  # minority is UDT
        if majority is Transport.UDT:
            return cls(1 - minority_share)
        raise RatioError(f"majority must be TCP or UDT, got {majority}")

    ALL_TCP: "ProtocolRatio"
    ALL_UDT: "ProtocolRatio"
    FIFTY_FIFTY: "ProtocolRatio"

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def probability(self) -> Fraction:
        """Probability of selecting UDT."""
        return self._u

    @property
    def signed(self) -> Fraction:
        """−1 = all TCP ... +1 = all UDT."""
        return 2 * self._u - 1

    def pattern_form(self) -> PatternForm:
        """The p/q pattern representation with majority by sign."""
        u = self._u
        if u <= Fraction(1, 2):
            minority_share = u
            minority, majority = Transport.UDT, Transport.TCP
        else:
            minority_share = 1 - u
            minority, majority = Transport.TCP, Transport.UDT
        if minority_share == 0:
            return PatternForm(0, 1, minority, majority)
        ratio = minority_share / (1 - minority_share)  # p/q
        return PatternForm(ratio.numerator, ratio.denominator, minority, majority)

    # ------------------------------------------------------------------
    # discretisation (the learner's ratio grid, §IV-C3)
    # ------------------------------------------------------------------
    def discretize(self, kappa: Fraction = Fraction(1, 5)) -> "ProtocolRatio":
        """Snap the signed form to the nearest multiple of ``kappa``.

        Half-step ties round *away from zero*: ``round()`` would apply
        banker's rounding and snap ties to even grid multiples, making the
        tie direction depend on the neighbouring step's parity instead of
        a symmetric rule (discretize(r) == -discretize(-r) per half-step).
        """
        if kappa <= 0 or kappa > 1:
            raise RatioError(f"kappa must be in (0, 1], got {kappa}")
        q = Fraction(self.signed) / Fraction(kappa)
        floor_q = q.numerator // q.denominator
        frac = q - floor_q
        half = Fraction(1, 2)
        if frac > half or (frac == half and q > 0):
            steps = floor_q + 1
        else:
            steps = floor_q
        snapped = max(Fraction(-1), min(Fraction(1), steps * Fraction(kappa)))
        return ProtocolRatio.from_signed(snapped)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProtocolRatio) and self._u == other._u

    def __hash__(self) -> int:
        return hash(self._u)

    def __repr__(self) -> str:
        return f"ProtocolRatio(signed={self.signed}, p(UDT)={self._u})"


ProtocolRatio.ALL_TCP = ProtocolRatio(0)
ProtocolRatio.ALL_UDT = ProtocolRatio(1)
ProtocolRatio.FIFTY_FIFTY = ProtocolRatio(Fraction(1, 2))


def signed_of_counts(tcp_count: int, udt_count: int) -> float:
    """Observed signed ratio of a message sample (−1 all TCP ... +1 all UDT)."""
    total = tcp_count + udt_count
    if total == 0:
        raise RatioError("no messages to compute a ratio over")
    return (udt_count - tcp_count) / total
