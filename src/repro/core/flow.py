"""Per-destination data-flow state inside the interceptor (§IV-A).

The interceptor "controls the flow of a data stream to a specific
destination node by queuing outgoing messages, and then releasing them to
the network layer at an adaptive rate, inserting the transport protocol
chosen by the current protocol selection policy".

Release is notify-clocked: at most ``window_messages`` messages are in
flight toward the network at once, and each delivery notification both
releases the next message and feeds the episode statistics the PRP learns
from.  Keeping the network-level queue this short is also what lets
latency-sensitive control traffic interleave with a DATA stream (§V-C).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.check import get_checker
from repro.core.prp import ProtocolRatioPolicy
from repro.core.psp import ProtocolSelectionPolicy
from repro.core.ratio import ProtocolRatio
from repro.core.rewards import EpisodeStats
from repro.errors import PolicyError
from repro.messaging.message import Msg
from repro.messaging.network_port import MessageNotify
from repro.messaging.transport import Transport
from repro.obs import get_registry, get_tracer
from repro.stats import TimeSeries
from repro.util.clock import Clock

DEFAULT_WINDOW_MESSAGES = 64


@dataclass(slots=True)
class _Queued:
    msg: Msg
    consumer_notify_id: Optional[int]
    enqueued_at: float


@dataclass(slots=True)
class _InFlight:
    consumer_notify_id: Optional[int]
    enqueued_at: float
    transport: Transport


class FlowTelemetry:
    """Per-episode series recorded for experiment output."""

    def __init__(self) -> None:
        self.throughput = TimeSeries("throughput")
        self.ratio_prescribed = TimeSeries("ratio-prescribed")
        self.ratio_true = TimeSeries("ratio-true")
        self.reward = TimeSeries("reward")


class DestinationFlow:
    """Queue + windowed release + episode accounting for one destination."""

    def __init__(
        self,
        psp: ProtocolSelectionPolicy,
        prp: ProtocolRatioPolicy,
        clock: Clock,
        release: Callable[[MessageNotify.Req], None],
        window_messages: int = DEFAULT_WINDOW_MESSAGES,
        dest: Optional[str] = None,
        transports: Tuple[Transport, ...] = (Transport.TCP, Transport.UDT),
    ) -> None:
        if window_messages < 1:
            raise PolicyError("window_messages must be at least 1")
        self.psp = psp
        self.prp = prp
        self.clock = clock
        self._release = release
        self.window_messages = window_messages
        #: wire transports this flow may release on, in fallback-preference
        #: order — the hold logic reroutes within this set (binary TCP/UDT
        #: by default; wider when the selector runs a configured arm list)
        self.transports = transports

        self.psp.set_ratio(prp.initial_ratio())

        self._queue: Deque[_Queued] = deque()
        self._in_flight: Dict[int, _InFlight] = {}
        #: transports held out of selection until the given sim time
        #: (transport-fallback signal from the recovery layer, §IV-A)
        self._down_until: Dict[Transport, float] = {}

        self._episode_start = clock.now()
        self._bytes_acked = 0
        self._messages_acked = 0
        self._messages_failed = 0
        self._tcp_released = 0
        self._udt_released = 0
        self._queue_delay_sum = 0.0

        self.telemetry = FlowTelemetry()
        self.total_bytes_acked = 0
        self.total_messages = 0

        metrics = get_registry()
        self._obs = metrics.enabled
        self._tracer = get_tracer()
        self._dest = dest
        checker = get_checker()
        self._inv = (
            checker.flow_hook(dest or "?", window_messages) if checker.enabled else None
        )
        labels = {"dest": dest} if dest is not None else {}
        self._m_selected_tcp = metrics.counter(
            "rl.selection_total", transport="tcp", **labels
        )
        self._m_selected_udt = metrics.counter(
            "rl.selection_total", transport="udt", **labels
        )
        self._m_episodes = metrics.counter("rl.flow.episodes_total", **labels)
        self._m_overrides = metrics.counter("rl.flow.fallback_overrides_total", **labels)
        self._m_ratio = metrics.gauge("rl.flow.ratio_signed", **labels)
        self._m_reward = metrics.gauge("rl.flow.reward", **labels)
        if metrics.enabled:
            metrics.gauge("rl.flow.queued", **labels).set_function(
                lambda: len(self._queue)
            )
            metrics.gauge("rl.flow.in_flight", **labels).set_function(
                lambda: len(self._in_flight)
            )

    # ------------------------------------------------------------------
    # intake and release
    # ------------------------------------------------------------------
    def enqueue(self, msg: Msg, consumer_notify_id: Optional[int] = None) -> None:
        """Accept a DATA message from a consumer."""
        self._queue.append(_Queued(msg, consumer_notify_id, self.clock.now()))
        self._pump()

    def _pump(self) -> None:
        queue = self._queue
        if not queue:
            return
        in_flight = self._in_flight
        window = self.window_messages
        select = self.psp.select
        release = self._release
        inv = self._inv
        obs = self._obs
        while queue and len(in_flight) < window:
            item = queue.popleft()
            transport = select()
            if self._down_until:
                transport = self._apply_transport_hold(transport)
            if transport is Transport.TCP:
                self._tcp_released += 1
                if obs:
                    self._m_selected_tcp.inc()
            elif transport is Transport.UDT:
                self._udt_released += 1
                if obs:
                    self._m_selected_udt.inc()
            # other wire transports (widened arm lists) are episode-counted
            # via messages_acked only; the binary ratio stats stay exact
            stamped = item.msg.with_protocol(transport)
            req = MessageNotify.Req(stamped)
            in_flight[req.notify_id] = _InFlight(
                item.consumer_notify_id, item.enqueued_at, transport
            )
            if inv is not None:
                inv.on_release(transport.value, len(in_flight))
            release(req)

    # ------------------------------------------------------------------
    # transport fallback (recovery layer → selector penalty, §IV-A)
    # ------------------------------------------------------------------
    def mark_transport_down(self, transport: Transport, until: float) -> None:
        """Hold ``transport`` out of the release path until sim time ``until``.

        Released messages the PSP prescribes for a held transport go out
        over the alternative instead; the resulting skew between prescribed
        and true ratio — and the failures that triggered the hold — are the
        penalty signal the ratio policy learns from.
        """
        self._down_until[transport] = max(self._down_until.get(transport, 0.0), until)
        self._tracer.event(
            "rl.transport_hold", dest=self._dest, transport=transport.value,
            until=until,
        )

    def mark_transport_up(self, transport: Transport) -> None:
        if self._down_until.pop(transport, None) is not None:
            self._tracer.event(
                "rl.transport_release", dest=self._dest, transport=transport.value,
            )

    def _apply_transport_hold(self, transport: Transport) -> Transport:
        now = self.clock.now()
        down = self._down_until
        # Purge expired holds so one recovery hold cannot tax every later
        # release: once the map empties, _pump skips this branch entirely.
        expired = [t for t, until in down.items() if until <= now]
        for t in expired:
            del down[t]
        if transport not in down:
            return transport
        for other in self.transports:
            if other is not transport and other not in down:
                if self._obs:
                    self._m_overrides.inc()
                return other
        return transport  # every alternative held: nothing better to offer

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def owns_notify(self, notify_id: int) -> bool:
        return notify_id in self._in_flight

    def on_notify_response(self, resp: MessageNotify.Resp) -> Optional[MessageNotify.Resp]:
        """Account a send notification; returns the consumer's Resp, if any."""
        entry = self._in_flight.pop(resp.notify_id, None)
        if entry is None:
            return None
        if resp.success:
            self._bytes_acked += resp.size
            self._messages_acked += 1
            delay = resp.sent_at - entry.enqueued_at
            if delay < 0.0:
                delay = 0.0
            self._queue_delay_sum += delay
            self.total_bytes_acked += resp.size
        else:
            self._messages_failed += 1
        self.total_messages += 1
        if self._inv is not None:
            self._inv.on_result(resp.success, len(self._in_flight))
        self._pump()
        if entry.consumer_notify_id is not None:
            return MessageNotify.Resp(entry.consumer_notify_id, resp.success, resp.sent_at, resp.size)
        return None

    # ------------------------------------------------------------------
    # episodes
    # ------------------------------------------------------------------
    def end_episode(self) -> Tuple[EpisodeStats, ProtocolRatio]:
        """Snapshot the episode, consult the PRP, adopt the new ratio."""
        now = self.clock.now()
        stats = EpisodeStats(
            start=self._episode_start,
            duration=now - self._episode_start,
            bytes_acked=self._bytes_acked,
            messages_acked=self._messages_acked,
            messages_failed=self._messages_failed,
            tcp_released=self._tcp_released,
            udt_released=self._udt_released,
            total_queue_delay=self._queue_delay_sum,
        )
        new_ratio = self.prp.update(stats)
        self.psp.set_ratio(new_ratio)

        self.telemetry.throughput.record(now, stats.throughput)
        self.telemetry.ratio_prescribed.record(now, float(new_ratio.signed))
        if stats.released > 0:
            self.telemetry.ratio_true.record(now, stats.true_ratio)
        reward = getattr(self.prp, "last_reward", None)
        if reward is not None:
            self.telemetry.reward.record(now, reward)
            self._m_reward.set(reward)
            reward_episode = getattr(self.psp, "reward_episode", None)
            if reward_episode is not None:
                # Widened arm lists learn per-arm estimates from the same
                # episode reward the ratio policy produced.
                reward_episode(reward)
        self._m_episodes.inc()
        self._m_ratio.set(float(new_ratio.signed))
        self._tracer.event(
            "rl.episode", dest=self._dest, reward=reward,
            ratio=float(new_ratio.signed), throughput=stats.throughput,
        )

        self._episode_start = now
        self._bytes_acked = 0
        self._messages_acked = 0
        self._messages_failed = 0
        self._tcp_released = 0
        self._udt_released = 0
        self._queue_delay_sum = 0.0
        return stats, new_ratio

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)
