"""DataNetwork: the interceptor + network bundle (paper §IV-A).

"The DataNetwork component is provided to wrap the interceptor and the
network component, in order to simplify setup."  It creates both children
(plus a timer for learning episodes), wires the interceptor to the network
with a selector that only lets the interceptor's own notifications back
in, and offers :meth:`connect_consumer`, which attaches a consumer port
with the ChannelSelectors that route non-data traffic straight past the
interceptor to the network component.

The wiring is backend-agnostic — :class:`DataNetworkBase` holds it, and
the concrete bundles plug in a network component: :class:`DataNetwork`
(simulated NettyNetwork over netsim) here, and
:class:`repro.aio.data_network.AioDataNetwork` (real sockets) in the aio
package.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.interceptor import DataNetworkInterceptor, PrpFactory, PspFactory, is_data_traffic
from repro.kompics.channel import Channel, ChannelSelector
from repro.kompics.component import Component, ComponentDefinition
from repro.kompics.event import KompicsEvent
from repro.kompics.port import Port
from repro.kompics.timer import SimTimerComponent, Timer
from repro.messaging.address import Address
from repro.messaging.compression import CompressionCodec
from repro.messaging.netty import DEFAULT_PROTOCOLS, NettyNetwork
from repro.messaging.network_port import MessageNotify, Network, TransportStatus
from repro.messaging.serialization import SerializerRegistry
from repro.messaging.transport import Transport
from repro.netsim.host import SimHost


class DataNetworkBase(ComponentDefinition):
    """Shared interceptor/consumer wiring for DataNetwork bundles.

    Subclasses create ``self.network`` (a component providing ``Network``)
    and a timer, then call :meth:`_wire_interceptor`.
    """

    network: Component

    def _wire_interceptor(
        self,
        timer: Component,
        psp_factory: Optional[PspFactory],
        prp_factory: Optional[PrpFactory],
        episode_length: Optional[float],
        window_messages: Optional[int],
    ) -> None:
        self.interceptor = self.create(
            DataNetworkInterceptor,
            psp_factory=psp_factory,
            prp_factory=prp_factory,
            episode_length=episode_length,
            window_messages=window_messages,
        )
        self.connect(timer.provided(Timer), self.interceptor.required(Timer))

        interceptor_def = self.interceptor.definition

        def owned_resp(event: KompicsEvent) -> bool:
            # Only the interceptor's own send notifications flow back into
            # it; inbound messages go straight to consumers.  Transport
            # health events also reach the interceptor so the selector can
            # steer flows away from a dead transport (recovery fallback).
            if isinstance(event, (TransportStatus.Down, TransportStatus.Up)):
                return True
            return isinstance(event, MessageNotify.Resp) and interceptor_def.owns_notify_id(
                event.notify_id
            )

        self.connect(
            self.network.provided(Network),
            self.interceptor.required(Network),
            ChannelSelector(on_indication=owned_resp),
        )

    # ------------------------------------------------------------------
    # consumer wiring
    # ------------------------------------------------------------------
    def connect_consumer(self, consumer_port: Port) -> Tuple[Channel, Channel]:
        """Attach a consumer's required Network port.

        Two selector-filtered channels reproduce the paper's wiring: DATA
        requests go to the interceptor, everything else directly to the
        network component; indications come from the network (minus the
        interceptor's internal notifications) and from the interceptor
        (re-emitted consumer notifications for data messages).
        """
        interceptor_def = self.interceptor.definition

        def not_owned_resp(event: KompicsEvent) -> bool:
            if isinstance(event, MessageNotify.Resp):
                return not interceptor_def.owns_notify_id(event.notify_id)
            return True

        data_channel = self.connect(
            self.interceptor.provided(Network),
            consumer_port,
            ChannelSelector(on_request=is_data_traffic),
        )
        direct_channel = self.connect(
            self.network.provided(Network),
            consumer_port,
            ChannelSelector(
                on_request=lambda ev: not is_data_traffic(ev),
                on_indication=not_owned_resp,
            ),
        )
        return data_channel, direct_channel

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def interceptor_def(self) -> DataNetworkInterceptor:
        return self.interceptor.definition


class DataNetwork(DataNetworkBase):
    """Wrapper composing NettyNetwork + DataNetworkInterceptor + timer."""

    def __init__(
        self,
        self_address: Address,
        host: SimHost,
        psp_factory: Optional[PspFactory] = None,
        prp_factory: Optional[PrpFactory] = None,
        episode_length: Optional[float] = None,
        window_messages: Optional[int] = None,
        protocols: Iterable[Transport] = DEFAULT_PROTOCOLS,
        serializers: Optional[SerializerRegistry] = None,
        compression: Optional[CompressionCodec] = None,
        timer: Optional[Component] = None,
    ) -> None:
        super().__init__()
        self.self_address = self_address
        self.network = self.create(
            NettyNetwork,
            self_address,
            host,
            protocols=protocols,
            serializers=serializers,
            compression=compression,
        )
        # Historical name: the simulated network child is the "netty" side.
        self.netty = self.network
        if timer is None:
            timer = self.create(SimTimerComponent)
        self._wire_interceptor(timer, psp_factory, prp_factory, episode_length, window_messages)

    @property
    def netty_def(self) -> NettyNetwork:
        return self.network.definition
