"""Protocol selection policies (paper §IV-B).

A PSP assigns a wire transport (TCP or UDT) to each individual message so
that the emitted stream approaches the target ratio prescribed by the
protocol ratio policy.  A *good* PSP stays close to the target even over
short windows of the stream (§IV-B: skew within one learning episode
distorts the learner's rewards).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.ratio import ProtocolRatio
from repro.messaging.transport import Transport


class ProtocolSelectionPolicy(ABC):
    """Stamps one of TCP/UDT onto each outgoing data message."""

    def __init__(self, ratio: ProtocolRatio = ProtocolRatio.FIFTY_FIFTY) -> None:
        self._ratio = ratio
        self.tcp_selected = 0
        self.udt_selected = 0

    @property
    def ratio(self) -> ProtocolRatio:
        return self._ratio

    def set_ratio(self, ratio: ProtocolRatio) -> None:
        """Adopt a new target ratio (called by the PRP each episode)."""
        self._ratio = ratio
        self._on_ratio_changed()

    def _on_ratio_changed(self) -> None:
        """Hook for subclasses to rebuild internal state."""

    def select(self) -> Transport:
        """The transport for the next message."""
        choice = self._select()
        if choice is Transport.TCP:
            self.tcp_selected += 1
        elif choice is Transport.UDT:
            self.udt_selected += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"PSP returned non-wire transport {choice}")
        return choice

    @abstractmethod
    def _select(self) -> Transport: ...


class RandomSelection(ProtocolSelectionPolicy):
    """Baseline probabilistic selection (§IV-B1).

    A Bernoulli draw per message with P(UDT) = the target probability.  The
    law of large numbers drives the long-run ratio to the target, but there
    is no short-term balance: §IV-B2 measures skews of ±0.5 over
    16-message windows, which distorts the learner's reward attribution.
    """

    def __init__(self, rng: random.Random, ratio: ProtocolRatio = ProtocolRatio.FIFTY_FIFTY) -> None:
        super().__init__(ratio)
        self._rng = rng

    def _select(self) -> Transport:
        return Transport.UDT if self._rng.random() < self._ratio.probability else Transport.TCP
