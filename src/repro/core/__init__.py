"""Adaptive transport selection — the paper's core contribution (§IV).

The ``Transport.DATA`` pseudo-protocol lets applications defer the TCP/UDT
choice to the middleware: a per-destination interceptor queues data
messages and releases them with a concrete transport stamped by a
*protocol selection policy* (probabilistic or pattern-based), whose target
mix is prescribed per learning episode by a *protocol ratio policy*
(static, or the Sarsa(λ) :class:`TDRatioLearner`).
"""

from repro.core.data_network import DataNetwork
from repro.core.flow import DestinationFlow, FlowTelemetry
from repro.core.interceptor import DataNetworkInterceptor, is_data_traffic
from repro.core.patterns import (
    PatternSelection,
    best_pattern,
    p_pattern,
    p_plus_one_pattern,
    pattern_for_ratio,
)
from repro.core.prp import ProtocolRatioPolicy, StaticRatio
from repro.core.psp import ProtocolSelectionPolicy, RandomSelection
from repro.core.ratio import PatternForm, ProtocolRatio, signed_of_counts
from repro.core.rewards import EpisodeStats, LatencyPenalizedReward, RewardFunction, ThroughputReward
from repro.core.td_learner import TDRatioLearner, ratio_states, step_actions

__all__ = [
    "ProtocolRatio",
    "PatternForm",
    "signed_of_counts",
    "ProtocolSelectionPolicy",
    "RandomSelection",
    "PatternSelection",
    "p_pattern",
    "p_plus_one_pattern",
    "best_pattern",
    "pattern_for_ratio",
    "ProtocolRatioPolicy",
    "StaticRatio",
    "TDRatioLearner",
    "ratio_states",
    "step_actions",
    "EpisodeStats",
    "RewardFunction",
    "ThroughputReward",
    "LatencyPenalizedReward",
    "DestinationFlow",
    "FlowTelemetry",
    "DataNetworkInterceptor",
    "is_data_traffic",
    "DataNetwork",
]
