"""Pattern-based protocol selection (paper §IV-B3/4).

For a target ratio in pattern form ``p/q`` (p minority-protocol messages
per q majority-protocol messages), deterministic interleavings keep the
running ratio close to the target at every point of the stream:

* **p-pattern**: split the Qs into blocks of ``b = ⌊q/p⌋`` and interleave
  a P after each block; the remainder ``c = q − p·b`` trails at the end:
  ``(Q^b P)^p Q^c``.
* **(p+1)-pattern**: one extra Q block between the last P and the tail,
  with ``b = ⌊q/(p+1)⌋`` and ``c = q − (p+1)·b``: ``(Q^b P)^p Q^b Q^c``.

The pattern with the smaller rest ``c`` is selected (ties favour the
p-pattern), minimising the unbalanced tail.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.psp import ProtocolSelectionPolicy
from repro.core.ratio import PatternForm, ProtocolRatio
from repro.errors import PolicyError
from repro.messaging.transport import Transport

# Symbols: True = minority (P), False = majority (Q).
Pattern = Tuple[bool, ...]

#: longest materialised pattern (p + q); finer ratios get snapped
MAX_PATTERN_LENGTH = 4096


def p_pattern(p: int, q: int) -> Tuple[Pattern, int]:
    """The p-pattern and its rest ``c`` for ratio p/q."""
    _validate(p, q)
    if p == 0:
        return (False,) * q, 0
    b = q // p
    c = q - p * b
    block = (False,) * b + (True,)
    return block * p + (False,) * c, c


def p_plus_one_pattern(p: int, q: int) -> Tuple[Pattern, int]:
    """The (p+1)-pattern and its rest ``c`` for ratio p/q."""
    _validate(p, q)
    if p == 0:
        return (False,) * q, 0
    b = q // (p + 1)
    c = q - (p + 1) * b
    block = (False,) * b + (True,)
    return block * p + (False,) * b + (False,) * c, c


def best_pattern(p: int, q: int) -> Pattern:
    """The pattern with the smaller rest (§IV-B4); ties take the p-pattern."""
    pat_p, rest_p = p_pattern(p, q)
    pat_p1, rest_p1 = p_plus_one_pattern(p, q)
    return pat_p if rest_p <= rest_p1 else pat_p1


def _validate(p: int, q: int) -> None:
    if q <= 0:
        raise PolicyError(f"pattern needs q > 0, got q={q}")
    if p < 0 or p > q:
        raise PolicyError(f"pattern needs 0 <= p <= q, got p={p}, q={q}")


def pattern_for_ratio(ratio: ProtocolRatio) -> Tuple[Pattern, PatternForm]:
    """The chosen interleaving for ``ratio`` plus its pattern form."""
    form = ratio.pattern_form()
    return best_pattern(form.p, form.q), form


class PatternSelection(ProtocolSelectionPolicy):
    """Deterministic interleaving PSP (§IV-B3).

    Cycles through the chosen pattern; a ratio change rebuilds the pattern
    and restarts it.  Compared to :class:`RandomSelection`, the observed
    ratio over any window deviates from the target by at most about one
    majority-block length (see Figure 1's reproduction).

    Patterns are materialised, so their length (p + q, the reduced
    denominator of the ratio) is capped at :data:`MAX_PATTERN_LENGTH`;
    finer ratios are snapped to the nearest representable one.  The paper
    makes the same point qualitatively (§IV-B4): ratios finer than the
    traffic's timescale cannot be realised anyway.
    """

    def __init__(self, ratio: ProtocolRatio = ProtocolRatio.FIFTY_FIFTY) -> None:
        super().__init__(ratio)
        self._pattern: Pattern = ()
        self._form: PatternForm = ratio.pattern_form()
        self._index = 0
        self._rebuild()

    def _on_ratio_changed(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        ratio = self._ratio
        if ratio.pattern_form().total > MAX_PATTERN_LENGTH:
            snapped = ratio.probability.limit_denominator(MAX_PATTERN_LENGTH)
            ratio = ProtocolRatio.from_probability(snapped)
        self._pattern, self._form = pattern_for_ratio(ratio)
        self._index = 0

    @property
    def pattern(self) -> Pattern:
        return self._pattern

    def _select(self) -> Transport:
        is_minority = self._pattern[self._index]
        self._index = (self._index + 1) % len(self._pattern)
        return self._form.minority if is_minority else self._form.majority
