"""Protocol ratio policies (paper §IV-C).

A PRP prescribes the target TCP/UDT ratio for one destination flow and
revises it at every learning episode from the observed reward statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.ratio import ProtocolRatio
from repro.core.rewards import EpisodeStats


class ProtocolRatioPolicy(ABC):
    """Prescribes the target ratio, episode by episode."""

    @abstractmethod
    def initial_ratio(self) -> ProtocolRatio:
        """The ratio for the flow's first episode."""

    @abstractmethod
    def update(self, stats: EpisodeStats) -> ProtocolRatio:
        """Digest one episode's statistics; return the next target ratio."""


class StaticRatio(ProtocolRatioPolicy):
    """A fixed ratio set at configuration time (§IV-C1).

    Used for testing PSPs and as the TCP-only / UDT-only / 50-50 reference
    configurations in the paper's experiments.
    """

    def __init__(self, ratio: ProtocolRatio) -> None:
        self._ratio = ratio

    def initial_ratio(self) -> ProtocolRatio:
        return self._ratio

    def update(self, stats: EpisodeStats) -> ProtocolRatio:
        return self._ratio
