"""The data-network-interceptor component (paper §IV-A).

Sits between consumers and the NettyNetwork component.  Messages carrying
the ``Transport.DATA`` pseudo-protocol are queued per destination and
released at an adaptive, notify-clocked rate with a concrete transport
(TCP or UDT) stamped by the protocol selection policy; the protocol ratio
policy revises the target ratio every learning episode (1 s timer).

Wiring options:

* Standalone: connect consumers to the provided Network port and the
  required Network port to a NettyNetwork — the interceptor forwards
  non-data traffic and inbound indications transparently.
* Via :class:`~repro.core.data_network.DataNetwork`, which adds the
  ChannelSelectors that route non-data traffic straight past the
  interceptor as the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.flow import DEFAULT_WINDOW_MESSAGES, DestinationFlow
from repro.core.prp import ProtocolRatioPolicy, StaticRatio
from repro.core.psp import ProtocolSelectionPolicy
from repro.core.patterns import PatternSelection
from repro.core.ratio import ProtocolRatio
from repro.kompics.component import ComponentDefinition
from repro.kompics.timer import SchedulePeriodicTimeout, Timeout, Timer
from repro.messaging.message import Msg
from repro.messaging.network_port import MessageNotify, Network, TransportStatus
from repro.messaging.transport import Transport
from repro.obs import get_registry

PspFactory = Callable[[], ProtocolSelectionPolicy]
PrpFactory = Callable[[], ProtocolRatioPolicy]

FlowKey = Tuple[str, int]


class _EpisodeTick(Timeout):
    __slots__ = ()


def is_data_traffic(event) -> bool:
    """True for requests that belong to the interceptor (DATA protocol)."""
    if isinstance(event, Msg):
        return event.header.protocol is Transport.DATA
    if isinstance(event, MessageNotify.Req):
        return event.msg.header.protocol is Transport.DATA
    return False


class DataNetworkInterceptor(ComponentDefinition):
    """Adaptive per-destination TCP/UDT traffic shifting."""

    def __init__(
        self,
        psp_factory: Optional[PspFactory] = None,
        prp_factory: Optional[PrpFactory] = None,
        episode_length: Optional[float] = None,
        window_messages: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.upper = self.provides(Network)  # consumers
        self.lower = self.requires(Network)  # the NettyNetwork
        self.timer = self.requires(Timer)

        #: configured arm list (``data.arms``: comma-separated cc-policy
        #: names from repro.netsim.congestion.CC_POLICIES).  When set and
        #: no explicit psp_factory is given, flows select over the arm
        #: list via ArmSelection instead of the binary TCP/UDT pattern.
        arms_spec = self.config.get("data.arms", None)
        self.arms = None
        if arms_spec:
            from repro.core.arms import build_arms

            self.arms = build_arms(arms_spec)
        if psp_factory is not None:
            self.psp_factory: PspFactory = psp_factory
        elif self.arms is not None:
            arms = self.arms
            epsilon = self.config.get_float("data.arms_epsilon", 0.1)
            rng = self.rng("arms")

            def make_arm_psp() -> ProtocolSelectionPolicy:
                from repro.core.arms import ArmSelection

                return ArmSelection(arms, rng=rng, epsilon=epsilon)

            self.psp_factory = make_arm_psp
        else:
            self.psp_factory = PatternSelection
        self.prp_factory: PrpFactory = prp_factory or (
            lambda: StaticRatio(ProtocolRatio.FIFTY_FIFTY)
        )
        #: transports the selector may emit and the fallback logic reroutes
        #: within (binary TCP/UDT unless an arm list widens it)
        if self.arms is not None:
            seen = []
            for arm in self.arms:
                if arm.transport not in seen:
                    seen.append(arm.transport)
            self.selectable: Tuple[Transport, ...] = tuple(seen)
        else:
            self.selectable = (Transport.TCP, Transport.UDT)
        self.episode_length = (
            episode_length
            if episode_length is not None
            else self.config.get_float("data.episode_length", 1.0)
        )
        self.window_messages = (
            window_messages
            if window_messages is not None
            else self.config.get_int("data.window_messages", DEFAULT_WINDOW_MESSAGES)
        )

        self.flows: Dict[FlowKey, DestinationFlow] = {}
        self._owned_notify_ids: set[int] = set()
        #: how long a TransportStatus.Down holds a transport out of a flow's
        #: release path (sim seconds); Up indications lift it early
        self.fallback_hold = self.config.get_float("messaging.fallback.hold", 10.0)
        #: active holds, kept so flows created mid-outage inherit them
        self._transport_down: Dict[Tuple[FlowKey, Transport], float] = {}

        metrics = get_registry()
        self._m_ticks = metrics.counter("rl.interceptor.ticks_total")
        self._m_transport_down = metrics.counter("rl.interceptor.transport_down_total")
        if metrics.enabled:
            metrics.gauge("rl.interceptor.flows", component=self.name).set_function(
                lambda: len(self.flows)
            )

        self.subscribe(self.upper, Msg, self._on_consumer_msg)
        self.subscribe(self.upper, MessageNotify.Req, self._on_consumer_notify_req)
        self.subscribe(self.lower, Msg, self._on_network_msg)
        self.subscribe(self.lower, MessageNotify.Resp, self._on_network_notify_resp)
        self.subscribe(self.lower, TransportStatus.Down, self._on_transport_down)
        self.subscribe(self.lower, TransportStatus.Up, self._on_transport_up)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        from repro.kompics.matchers import match_fields

        tick = _EpisodeTick()
        # Timeout indications broadcast on shared timers: match our id.
        self.subscribe_matching(
            self.timer, _EpisodeTick, self._on_episode_tick,
            match_fields(timeout_id=tick.timeout_id),
        )
        self.trigger(
            SchedulePeriodicTimeout(self.episode_length, self.episode_length, tick), self.timer
        )

    # ------------------------------------------------------------------
    # consumer-side handlers
    # ------------------------------------------------------------------
    def _on_consumer_msg(self, msg: Msg) -> None:
        if msg.header.protocol is not Transport.DATA:
            # Not ours (standalone wiring without selectors): pass through.
            self.trigger(msg, self.lower)
            return
        self._flow_for(msg).enqueue(msg, consumer_notify_id=None)

    def _on_consumer_notify_req(self, req: MessageNotify.Req) -> None:
        if req.msg.header.protocol is not Transport.DATA:
            self.trigger(req, self.lower)
            return
        self._flow_for(req.msg).enqueue(req.msg, consumer_notify_id=req.notify_id)

    def _flow_for(self, msg: Msg) -> DestinationFlow:
        key: FlowKey = msg.header.destination.as_socket()
        flow = self.flows.get(key)
        if flow is None:
            flow = DestinationFlow(
                psp=self.psp_factory(),
                prp=self.prp_factory(),
                clock=self.clock,
                release=self._release,
                window_messages=self.window_messages,
                dest=f"{key[0]}:{key[1]}",
                transports=self.selectable,
            )
            self.flows[key] = flow
            # A flow created mid-outage inherits the active holds.
            now = self.clock.now()
            for (down_key, transport), until in self._transport_down.items():
                if down_key == key and until > now:
                    flow.mark_transport_down(transport, until)
        return flow

    def _release(self, req: MessageNotify.Req) -> None:
        self._owned_notify_ids.add(req.notify_id)
        self.lower.trigger(req)

    # ------------------------------------------------------------------
    # network-side handlers
    # ------------------------------------------------------------------
    def _on_network_msg(self, msg: Msg) -> None:
        # Standalone wiring: inbound traffic is forwarded up transparently.
        self.trigger(msg, self.upper)

    def _on_network_notify_resp(self, resp: MessageNotify.Resp) -> None:
        if resp.notify_id not in self._owned_notify_ids:
            self.trigger(resp, self.upper)  # a consumer's own non-data notify
            return
        self._owned_notify_ids.discard(resp.notify_id)
        for flow in self.flows.values():
            if flow.owns_notify(resp.notify_id):
                consumer_resp = flow.on_notify_response(resp)
                if consumer_resp is not None:
                    self.trigger(consumer_resp, self.upper)
                return

    # ------------------------------------------------------------------
    # transport health (recovery-layer fallback signal, §IV-A)
    # ------------------------------------------------------------------
    def _on_transport_down(self, event: TransportStatus.Down) -> None:
        if event.transport not in self.selectable:
            return  # only transports the PSP can emit matter to holds
        self._m_transport_down.inc()
        until = self.clock.now() + self.fallback_hold
        self._transport_down[(event.remote, event.transport)] = until
        flow = self.flows.get(event.remote)
        if flow is not None:
            flow.mark_transport_down(event.transport, until)

    def _on_transport_up(self, event: TransportStatus.Up) -> None:
        if self._transport_down.pop((event.remote, event.transport), None) is None:
            return
        flow = self.flows.get(event.remote)
        if flow is not None:
            flow.mark_transport_up(event.transport)

    # ------------------------------------------------------------------
    # episodes
    # ------------------------------------------------------------------
    def _on_episode_tick(self, tick: _EpisodeTick) -> None:
        self._m_ticks.inc()
        for flow in self.flows.values():
            flow.end_episode()

    # ------------------------------------------------------------------
    # introspection (used by DataNetwork's channel selectors and benches)
    # ------------------------------------------------------------------
    def owns_notify_id(self, notify_id: int) -> bool:
        return notify_id in self._owned_notify_ids

    def flow_to(self, ip: str, port: int) -> Optional[DestinationFlow]:
        return self.flows.get((ip, port))
