"""The ε-greedy action policy with linear decay (paper §II-C, §IV-C3).

Explores with probability ε (decayed from ε_max toward ε_min by Δε per
step, simulated-annealing style) and otherwise exploits the best known
action value.  When no candidate action has a learned (or approximated)
value, the decision is random — the paper's "it makes a random decision if
the value is uninitialised".
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional


class EpsilonGreedy:
    """ε-greedy with linear ε decay."""

    def __init__(
        self,
        rng: random.Random,
        epsilon_max: float = 0.8,
        epsilon_min: float = 0.1,
        epsilon_decay: float = 0.01,
    ) -> None:
        if not 0.0 <= epsilon_min <= epsilon_max <= 1.0:
            raise ValueError("need 0 <= epsilon_min <= epsilon_max <= 1")
        if epsilon_decay < 0:
            raise ValueError("epsilon_decay must be non-negative")
        self._rng = rng
        self.epsilon = epsilon_max
        self.epsilon_min = epsilon_min
        self.epsilon_decay = epsilon_decay
        self.explorations = 0
        self.exploitations = 0

    def choose(self, values: Dict[Hashable, Optional[float]]) -> Hashable:
        """Pick an action given its (possibly unknown) value estimates."""
        if not values:
            raise ValueError("no actions to choose from")
        actions = list(values.keys())
        if self._rng.random() < self.epsilon:
            self.explorations += 1
            return self._rng.choice(actions)
        known = [(a, v) for a, v in values.items() if v is not None]
        if not known:
            # Uninitialised everywhere: forced random decision.
            self.explorations += 1
            return self._rng.choice(actions)
        self.exploitations += 1
        best = max(v for _, v in known)
        best_actions = [a for a, v in known if v == best]
        return self._rng.choice(best_actions)

    def step_decay(self) -> None:
        """One time step's ε decay (called once per learning episode)."""
        self.epsilon = max(self.epsilon - self.epsilon_decay, self.epsilon_min)
