"""Action-value function representations.

The interface distinguishes *unknown* values (``value`` returns ``None``)
from learned ones, because the ε-greedy policy must fall back to random
decisions on uninitialised entries (§IV-C3) — the very behaviour that
makes the plain matrix representation converge too slowly to be useful.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Optional, Tuple

from repro.check import get_checker


class ActionValueFunction(ABC):
    """Q(s, a) estimate with explicit unknown-ness."""

    @abstractmethod
    def value(self, state: Hashable, action: Hashable) -> Optional[float]:
        """The current estimate, or None when nothing was learned yet."""

    @abstractmethod
    def adjust(self, state: Hashable, action: Hashable, amount: float) -> None:
        """Add ``amount`` (= α·δ·e) to the entry backing (state, action)."""

    def estimate(self, state: Hashable, action: Hashable) -> float:
        """Like :meth:`value` but 0.0 for unknown (the TD-target default)."""
        v = self.value(state, action)
        return 0.0 if v is None else v


class MatrixQ(ActionValueFunction):
    """The default dense-table representation (§IV-C3).

    Every (state, action) pair must be explored individually; with the
    paper's 11x5 grid this takes longer than most transfers last, which is
    exactly what the Figure 4 reproduction shows.
    """

    def __init__(self) -> None:
        self._q: Dict[Tuple[Hashable, Hashable], float] = {}
        checker = get_checker()
        self._inv = checker.rl_hook() if checker.enabled else None

    def value(self, state: Hashable, action: Hashable) -> Optional[float]:
        return self._q.get((state, action))

    def adjust(self, state: Hashable, action: Hashable, amount: float) -> None:
        key = (state, action)
        self._q[key] = value = self._q.get(key, 0.0) + amount
        if self._inv is not None:
            self._inv.check_q(state, action, value)

    @property
    def entries_learned(self) -> int:
        return len(self._q)
