"""Reinforcement-learning machinery for adaptive transport selection.

Implements the paper's Sarsa(λ) control loop (Figure 3) with replacing
eligibility traces and an ε-greedy policy with linear decay, over three
interchangeable action-value representations (§IV-C3/4/5):

* :class:`MatrixQ` — the plain ``Q(s, a)`` table (slow to converge);
* :class:`ModelBasedV` — ``Q(s, a) = V(M(s, a))`` via the clamped
  transition model, collapsing the table to a state-value vector;
* :class:`QuadraticApproxV` — model-based plus quadratic extrapolation of
  unexplored states (never overriding learned values).
"""

from repro.core.rl.approx import QuadraticApproxV
from repro.core.rl.model import ModelBasedV, TransitionModel
from repro.core.rl.policy import EpsilonGreedy
from repro.core.rl.qfunc import ActionValueFunction, MatrixQ
from repro.core.rl.sarsa import SarsaLambda
from repro.core.rl.traces import EligibilityTraces

__all__ = [
    "EpsilonGreedy",
    "EligibilityTraces",
    "ActionValueFunction",
    "MatrixQ",
    "TransitionModel",
    "ModelBasedV",
    "QuadraticApproxV",
    "SarsaLambda",
]
