"""Model-based value function (paper §IV-C4).

Domain knowledge: an action is a ratio step, so the successor state is
simply the clamped sum,

    M(s, a) = min(s + a, max(S))  for s + a >= 0
              max(s + a, min(S))  for s + a < 0

which lets the 11x5 Q-matrix collapse into an 11-entry state-value vector
V with Q(s, a) = V(M(s, a)).  Many (s, a) pairs share each V(s') entry, so
exploration propagates far faster — Figure 5's ~20 s convergence.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Optional, Sequence

from repro.core.rl.qfunc import ActionValueFunction


class TransitionModel:
    """The clamped additive state-transition model over a ratio grid."""

    def __init__(self, states: Sequence[Fraction]) -> None:
        if not states:
            raise ValueError("need at least one state")
        self.states = sorted(states)
        self._state_set = set(self.states)
        self.low = self.states[0]
        self.high = self.states[-1]
        #: canonical grid objects, so every next_state result is the same
        #: Fraction instance and downstream dict probes short-circuit on
        #: identity instead of running Fraction.__eq__
        self._canon = {s: s for s in self.states}
        #: memoized transitions keyed by (num, den, num, den) int tuples —
        #: Fraction.__hash__ computes a modular inverse per call, which
        #: dominates the learner's episode cost without this
        self._memo: Dict[tuple, Fraction] = {}

    def next_state(self, state: Fraction, action: Fraction) -> Fraction:
        """M(s, a): apply the step and clamp to the grid boundary."""
        key = (
            state.numerator, state.denominator,
            action.numerator, action.denominator,
        )
        target = self._memo.get(key)
        if target is not None:
            return target
        if state not in self._state_set:
            raise ValueError(f"unknown state {state}")
        target = state + action
        if target > self.high:
            target = self.high
        elif target < self.low:
            target = self.low
        if target not in self._state_set:
            raise ValueError(f"action {action} leaves the grid from {state} (-> {target})")
        target = self._canon[target]
        self._memo[key] = target
        return target


class ModelBasedV(ActionValueFunction):
    """Q(s, a) = V(M(s, a)) over a learned state-value vector."""

    def __init__(self, model: TransitionModel) -> None:
        self.model = model
        self._v: Dict[Hashable, float] = {}

    def value(self, state: Hashable, action: Hashable) -> Optional[float]:
        return self._v.get(self.model.next_state(state, action))

    def adjust(self, state: Hashable, action: Hashable, amount: float) -> None:
        target = self.model.next_state(state, action)
        self._v[target] = self._v.get(target, 0.0) + amount

    def state_value(self, state: Hashable) -> Optional[float]:
        return self._v.get(state)

    @property
    def states_learned(self) -> int:
        return len(self._v)
