"""Quadratic value-function approximation (paper §IV-C5).

Assumption: "at any given time the reward function for a given connection's
protocol selection ratio has the shape of a quadratic function with a
single maximum."  Once at least two states carry learned values, a
least-squares polynomial (degree 2, or 1 with only two points) fitted over
them extrapolates the value of unexplored states, so the ε-greedy policy
can act greedily before the grid is explored.  Approximations are *never*
stored and never override learned values — they only fill the gaps.
"""

from __future__ import annotations

import warnings
from typing import Hashable, Optional

import numpy as np

from repro.core.rl.model import ModelBasedV, TransitionModel


class QuadraticApproxV(ModelBasedV):
    """Model-based V with quadratic extrapolation of unknown states."""

    MIN_POINTS = 2

    def __init__(self, model: TransitionModel) -> None:
        super().__init__(model)
        self._fit_cache: Optional[np.poly1d] = None
        self._fit_dirty = True

    def adjust(self, state: Hashable, action: Hashable, amount: float) -> None:
        super().adjust(state, action, amount)
        self._fit_dirty = True

    def value(self, state: Hashable, action: Hashable) -> Optional[float]:
        learned = super().value(state, action)
        if learned is not None:
            return learned
        target = self.model.next_state(state, action)
        return self._approximate(target)

    def _approximate(self, state: Hashable) -> Optional[float]:
        if len(self._v) < self.MIN_POINTS:
            return None
        fit = self._fit()
        if fit is None:
            return None
        return float(fit(float(state)))

    def _fit(self) -> Optional[np.poly1d]:
        if not self._fit_dirty:
            return self._fit_cache
        xs = np.array([float(s) for s in self._v.keys()])
        ys = np.array(list(self._v.values()))
        degree = min(2, len(xs) - 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", np.exceptions.RankWarning)
            try:
                coeffs = np.polyfit(xs, ys, degree)
            except (np.linalg.LinAlgError, ValueError):  # pragma: no cover
                self._fit_cache = None
                self._fit_dirty = False
                return None
        self._fit_cache = np.poly1d(coeffs)
        self._fit_dirty = False
        return self._fit_cache
