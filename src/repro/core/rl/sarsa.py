"""The on-policy Sarsa(λ) control loop (paper Figure 3).

Works over any :class:`ActionValueFunction`, which is how the matrix,
model-based and approximated variants (§IV-C3/4/5) plug into the same
learner.  One *step* corresponds to one learning episode of the transport
selector: take action a (move the ratio), observe the episode reward r and
the resulting state s', then update all eligible state-action pairs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.check import get_checker
from repro.core.rl.policy import EpsilonGreedy
from repro.core.rl.qfunc import ActionValueFunction
from repro.core.rl.traces import EligibilityTraces


class SarsaLambda:
    """Sarsa(λ) with (by default, replacing) eligibility traces."""

    def __init__(
        self,
        actions: Sequence[Hashable],
        qfunc: ActionValueFunction,
        policy: EpsilonGreedy,
        transition: Callable[[Hashable, Hashable], Hashable],
        alpha: float = 0.5,
        gamma: float = 0.5,
        lam: float = 0.85,
        traces: Optional[EligibilityTraces] = None,
    ) -> None:
        if not actions:
            raise ValueError("need at least one action")
        self.actions = list(actions)
        self.qfunc = qfunc
        self.policy = policy
        self.transition = transition
        self.alpha = alpha
        self.gamma = gamma
        self.lam = lam
        self.traces = traces if traces is not None else EligibilityTraces("replacing")
        self.state: Optional[Hashable] = None
        self.action: Optional[Hashable] = None
        self.steps = 0
        #: TD error δ from the most recent step (diagnostics / gauges)
        self.last_delta: Optional[float] = None
        checker = get_checker()
        self._inv = checker.rl_hook() if checker.enabled else None

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def begin(self, state: Hashable) -> Hashable:
        """Initialise s and choose the first action; returns s' = M(s, a)."""
        self.state = state
        self.action = self._choose(state)
        return self.transition(state, self.action)

    def step(self, reward: float, next_state: Hashable) -> Hashable:
        """One Figure-3 loop iteration after observing (r, s').

        Returns the state the environment should move to next,
        ``M(s', a')`` for the freshly chosen a'.
        """
        if self.state is None or self.action is None:
            raise RuntimeError("call begin() before step()")
        s, a = self.state, self.action
        s_prime = next_state
        a_prime = self._choose(s_prime)

        delta = reward + self.gamma * self.qfunc.estimate(s_prime, a_prime) - self.qfunc.estimate(s, a)
        self.last_delta = delta
        if self._inv is not None:
            self._inv.on_step(reward, delta)
        self.traces.visit(s, a)
        for (es, ea), e in self.traces.items():
            self.qfunc.adjust(es, ea, self.alpha * delta * e)
        self.traces.decay(self.gamma, self.lam)

        self.state, self.action = s_prime, a_prime
        self.policy.step_decay()
        self.steps += 1
        return self.transition(s_prime, a_prime)

    def _choose(self, state: Hashable) -> Hashable:
        values = {a: self.qfunc.value(state, a) for a in self.actions}
        return self.policy.choose(values)
