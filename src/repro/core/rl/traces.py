"""Eligibility traces (paper §IV-C2, Figure 3 lines 8-15).

The paper uses *replacing* traces — on a visit, e(s,a) is set to 1 and the
other actions of the same state are cleared — "to avoid heavily visited
state-action pairs [having] unreasonably high eligibility".  The default
*accumulating* variant (e += 1) is provided for the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Tuple

from repro.check import get_checker

StateAction = Tuple[Hashable, Hashable]

PRUNE_BELOW = 1e-6


class EligibilityTraces:
    """Sparse e(s, a) map with replacing or accumulating visit semantics."""

    def __init__(self, kind: str = "replacing") -> None:
        if kind not in ("replacing", "accumulating"):
            raise ValueError(f"unknown trace kind {kind!r}")
        self.kind = kind
        self._traces: Dict[StateAction, float] = {}
        checker = get_checker()
        self._inv = checker.rl_hook() if checker.enabled else None

    def visit(self, state: Hashable, action: Hashable) -> None:
        """Mark (state, action) as just taken."""
        if self.kind == "replacing":
            # Figure 3: e(s,a) <- 1 and e(s,â) <- 0 for all â != a.
            for (s, a) in [k for k in self._traces if k[0] == state and k[1] != action]:
                del self._traces[(s, a)]
            self._traces[(state, action)] = 1.0
        else:
            self._traces[(state, action)] = self._traces.get((state, action), 0.0) + 1.0
        if self._inv is not None:
            self._inv.check_traces(self.kind, self._traces)

    def decay(self, gamma: float, lam: float) -> None:
        """Scale every trace by γλ, pruning negligible entries."""
        factor = gamma * lam
        if factor == 0.0:
            self._traces.clear()
            return
        stale = []
        for key in self._traces:
            self._traces[key] *= factor
            if self._traces[key] < PRUNE_BELOW:
                stale.append(key)
        for key in stale:
            del self._traces[key]

    def get(self, state: Hashable, action: Hashable) -> float:
        return self._traces.get((state, action), 0.0)

    def items(self) -> Iterator[Tuple[StateAction, float]]:
        return iter(list(self._traces.items()))

    def __len__(self) -> int:
        return len(self._traces)

    def clear(self) -> None:
        self._traces.clear()
