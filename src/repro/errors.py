"""Exception hierarchy for the :mod:`repro` library.

All library-defined exceptions derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for inconsistencies inside the discrete-event kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a stopped kernel."""


class ConfigError(ReproError):
    """Raised for missing or ill-typed configuration values."""


class PortError(ReproError):
    """Raised when an event is triggered or subscribed on the wrong port side."""


class ChannelError(ReproError):
    """Raised for illegal channel connections (mismatched port types, etc.)."""


class ComponentError(ReproError):
    """Raised for component lifecycle violations."""


class NetworkError(ReproError):
    """Base class for network-layer errors."""


class AddressError(NetworkError):
    """Raised for malformed or unroutable addresses."""


class ConnectionClosedError(NetworkError):
    """Raised when sending on a connection that was dropped."""


class SerializationError(NetworkError):
    """Raised when a message cannot be serialized or deserialized."""


class TransportError(NetworkError):
    """Raised when a requested transport is unsupported on a link or host."""


class AioStartupError(NetworkError):
    """Raised when an aio network failed to come up (bind/dial error or a
    dead event-loop thread); ``__cause__`` carries the underlying error."""


class PolicyError(ReproError):
    """Raised for invalid protocol-selection or protocol-ratio policy state."""


class RatioError(PolicyError):
    """Raised for protocol ratios outside their representable domain."""
