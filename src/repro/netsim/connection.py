"""Connections and the fluid message-transmission machinery."""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from repro import fastpath
from repro.check import get_checker
from repro.check import perturb as check_perturb
from repro.errors import ConnectionClosedError
from repro.netsim.congestion import CongestionControl
from repro.netsim.link import LinkDirection, Proto
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.host import NetworkStack


class WireMessage:
    """A middleware message handed to the transport layer.

    ``payload`` is opaque to the simulator (the messaging layer passes its
    serialized envelope); ``size`` is the on-wire byte count after
    serialization and compression.  ``on_sent`` fires at transmission end
    (success) or when the message is dropped/aborted (failure) — this is
    the signal behind the middleware's ``MessageNotify`` feature.
    """

    __slots__ = ("payload", "size", "on_sent", "check_seq")

    def __init__(self, payload: Any, size: int, on_sent: Optional[Callable[[bool], None]] = None) -> None:
        if size <= 0:
            raise ValueError("message size must be positive")
        self.payload = payload
        self.size = size
        self.on_sent = on_sent
        #: (stream id, sequence number) stamped by the sending flow only
        #: when an invariant checker is installed (FIFO/exactly-once check)
        self.check_seq: Optional[Tuple[int, int]] = None

    def _sent(self, success: bool) -> None:
        if self.on_sent is not None:
            self.on_sent(success)


class ConnectionState(enum.Enum):
    CONNECTING = "connecting"
    ACTIVE = "active"
    CLOSED = "closed"
    FAILED = "failed"


class FlowState:
    """One direction's transmission engine: queue + pacing + loss.

    The head message occupies the flow for ``size / rate`` seconds, with the
    rate sampled at transmission start from the congestion controller and
    the link's max-min allocation.  Completion credits the controller
    (ack-equivalent under self-pacing) and draws loss; reliable protocols
    only slow down on loss, UDP drops the datagram.

    Receive-side delivery train
    ---------------------------
    When the congestion window keeps a bulk flow busy, completions come
    back-to-back and every one schedules its own delivery event one link
    delay ahead — on a long fat path that's O(bandwidth × delay) heap
    entries per flow.  The fast path coalesces them into a per-flow
    *delivery train*: due times are computed exactly as before (same
    clock reads, same jitter draws, in the same order), appended to a
    deque, and a single pump event walks the train, so the heap holds at
    most one receive event per flow.  Entries whose due time would break
    the train's monotonic order (the link delay dropped mid-flight) fall
    back to an individually scheduled event, reproducing the reference
    heap behaviour.  See ``docs/performance.md``.
    """

    def __init__(
        self,
        sim: Simulator,
        link_dir: LinkDirection,
        cc: CongestionControl,
        rng,
        deliver: Callable[[WireMessage], None],
        queue_limit_bytes: float = math.inf,
    ) -> None:
        self.sim = sim
        self.link_dir = link_dir
        self.cc = cc
        self.rng = rng
        self.deliver = deliver
        self.queue_limit_bytes = queue_limit_bytes
        self.queue: Deque[WireMessage] = deque()
        self.queued_bytes = 0
        self.busy = False
        self.aborted = False
        self.bytes_sent = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        #: in-flight deliveries as (due time, message), due-monotonic
        self._train: Deque[Tuple[float, WireMessage]] = deque()
        self._pump_scheduled = False
        # Bind the per-completion hook only when the controller overrides
        # it, keeping the hot path a single None check for the common case.
        if type(cc).on_transmit_complete is not CongestionControl.on_transmit_complete:
            self._cc_post: Optional[Callable[[float], None]] = cc.on_transmit_complete
        else:
            self._cc_post = None
        # Ordered flows stamp a (stream, seq) pair on each wire message so
        # the receiving connection can assert FIFO delivery.  UDP flows are
        # exempt: jitter legitimately reorders them.
        checker = get_checker()
        if checker.enabled and cc.ordered:
            self._wire_stream: Optional[int] = checker.register_wire_stream()
        else:
            self._wire_stream = None
        self._wire_seq = 0

    @property
    def subject_to_udp_cap(self) -> bool:
        return self.cc.subject_to_udp_cap

    @property
    def scavenger(self) -> bool:
        return self.cc.scavenger

    def demand_rate(self) -> float:
        return self.cc.demand_rate(self.sim.clock._now)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, msg: WireMessage) -> None:
        if self.aborted:
            msg._sent(False)
            return
        if self.queued_bytes + msg.size > self.queue_limit_bytes:
            # Socket-buffer overflow (UDP): drop at the sender.
            self.messages_dropped += 1
            self.link_dir.note_drop()
            msg._sent(False)
            return
        if self._wire_stream is not None:
            msg.check_seq = (self._wire_stream, self._wire_seq)
            self._wire_seq += 1
        self.queue.append(msg)
        self.queued_bytes += msg.size
        self.link_dir.activate(self)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        msg = self.queue[0]
        if fastpath.ALLOC_EPOCH:
            # allocate_rate() never exceeds this flow's demand and already
            # floors at 1.0, so min(demand, rate) == rate and the extra
            # demand query is redundant (demand_rate is idempotent within
            # a timestamp; skipping it cannot change controller state).
            rate = self.link_dir.allocate_rate(self)
        else:
            rate = min(self.demand_rate(), self.link_dir.allocate_rate(self))
            rate = max(rate, 1.0)
        self.busy = True
        duration = msg.size / rate
        self.sim.schedule(duration, self._complete, label="flow-tx")

    def _complete(self) -> None:
        if self.aborted:
            return
        sim = self.sim
        link_dir = self.link_dir
        now = sim.clock._now
        msg = self.queue.popleft()
        size = msg.size
        self.queued_bytes -= size
        self.bytes_sent += size
        self.messages_sent += 1
        link_dir.note_transmit(size)

        cc = self.cc
        gen0 = cc.demand_gen
        cc.on_bytes_sent(size, now)
        lost = self.rng.random() < link_dir.loss_probability(size)
        if lost:
            cc.on_loss(now)
        if self._cc_post is not None:
            # Policy-specific completion hook (e.g. UDT's receive-buffer
            # overshoot check, which acts as an additional loss signal).
            self._cc_post(now)
        if cc.demand_gen != gen0:
            # The controller's demand moved: cached allocations are stale.
            link_dir.demand_dirty()

        if link_dir.up and (cc.reliable or not lost):
            spec = link_dir.spec
            delay = spec.delay
            if not cc.ordered and spec.jitter > 0:
                delay += self.rng.uniform(0.0, spec.jitter)
            if fastpath.RX_TRAIN:
                self._enqueue_delivery(now + delay, msg)
            else:
                sim.schedule(delay, lambda m=msg: self.deliver(m), label="flow-rx")
            msg._sent(True)
        else:
            self.messages_dropped += 1
            link_dir.note_drop()
            msg._sent(False)

        if self.queue:
            self._start_next()
        else:
            self.busy = False
            link_dir.deactivate(self)

    # ------------------------------------------------------------------
    # receive-side delivery train
    # ------------------------------------------------------------------
    def _enqueue_delivery(self, due: float, msg: WireMessage) -> None:
        train = self._train
        if train and due < train[-1][0]:
            # The link delay shrank while messages were in flight: an
            # appended entry would pump out of due order.  Match the
            # reference heap exactly by scheduling this one individually.
            self.sim.schedule_at(due, lambda m=msg: self.deliver(m), label="flow-rx")
            return
        train.append((due, msg))
        if self._wire_stream is not None and check_perturb.rx_swap_due() and len(train) >= 2:
            # Seeded fast-path fault for the bisection demo/self-test:
            # swap the train tail so two deliveries come out reordered.
            train[-1], train[-2] = train[-2], train[-1]
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.schedule_at(due, self._pump_rx, label="flow-rx")

    def _pump_rx(self) -> None:
        """Deliver every train entry that is due; re-arm for the next one.

        Deliveries keep running after an abort or close: those messages
        were already on the wire, and the receiving connection drops them
        itself if it is no longer active (same as the reference path).
        """
        train = self._train
        now = self.sim.clock._now
        due = 0
        for entry in train:
            if entry[0] > now:
                break
            due += 1
        if due == 1:
            # The overwhelmingly common case under windowed flow control:
            # exactly one entry matured, deliver it right here.
            self.deliver(train.popleft()[1])
        elif due:
            # A real burst (coinciding due times): fan the batch out with
            # one schedule_many call — contiguous sequence numbers keep
            # train order, and each delivery runs as its own event so a
            # mid-batch teardown behaves like the reference path.
            deliver = self.deliver
            batch = [train.popleft()[1] for _ in range(due)]
            self.sim.schedule_many(
                0.0, [lambda m=m: deliver(m) for m in batch], label="flow-rx"
            )
        if train:
            self.sim.schedule_at(train[0][0], self._pump_rx, label="flow-rx")
        else:
            self._pump_scheduled = False

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Fail everything queued; at-most-once semantics on channel drop."""
        if self.aborted:
            return
        self.aborted = True
        self.busy = False
        self.link_dir.deactivate(self)
        # The controller must stop contributing demand in this same
        # allocation epoch: deactivate() only bumps the epoch when the flow
        # was in the active set, so also invalidate via the controller's
        # generation and an explicit dirty mark — survivors re-solve at
        # their next event and absorb the freed bandwidth.
        self.cc.demand_gen += 1
        self.link_dir.demand_dirty()
        pending: List[WireMessage] = list(self.queue)
        self.queue.clear()
        self.queued_bytes = 0
        for msg in pending:
            self.messages_dropped += 1
            self.link_dir.note_drop()
            msg._sent(False)


class Connection:
    """A duplex transport connection between two stacks.

    Sends buffered while CONNECTING are flushed on ACTIVE (the paper's
    "messages delayed until the requested channels are available", §III-C).
    """

    def __init__(
        self,
        stack: "NetworkStack",
        local: tuple,
        remote: tuple,
        proto: Proto,
        flow: FlowState,
        conn_id: int,
    ) -> None:
        self.stack = stack
        self.local = local
        self.remote = remote
        self.proto = proto
        self.flow = flow
        self.id = conn_id
        self.state = ConnectionState.CONNECTING
        self.peer: Optional["Connection"] = None
        #: opaque client-supplied handshake payload; the accepting side
        #: reads it as ``peer_hello`` (middleware uses it to announce its
        #: own listening address for channel reuse)
        self.hello: Any = None
        self.peer_hello: Any = None
        self._pending: List[WireMessage] = []
        self.on_message: Optional[Callable[[Any, int, "Connection"], None]] = None
        self.on_connected: Optional[Callable[[ "Connection"], None]] = None
        self.on_failed: Optional[Callable[["Connection", str], None]] = None
        self.on_closed: Optional[Callable[["Connection"], None]] = None
        checker = get_checker()
        self._check = checker if checker.enabled else None

    # ------------------------------------------------------------------
    # state transitions (driven by the owning stack)
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        self.state = ConnectionState.ACTIVE
        if self.on_connected is not None:
            self.on_connected(self)
        pending, self._pending = self._pending, []
        for msg in pending:
            self.flow.send(msg)

    def _fail(self, reason: str) -> None:
        self.state = ConnectionState.FAILED
        pending, self._pending = self._pending, []
        for msg in pending:
            msg._sent(False)
        self.flow.abort()
        if self.on_failed is not None:
            self.on_failed(self, reason)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(self, msg: WireMessage) -> None:
        if self.state is ConnectionState.CONNECTING:
            self._pending.append(msg)
            return
        if self.state is not ConnectionState.ACTIVE:
            raise ConnectionClosedError(f"send on {self.state.value} connection {self!r}")
        self.flow.send(msg)

    def _receive(self, msg: WireMessage) -> None:
        """Called by the peer's flow at delivery time."""
        if self.state is not ConnectionState.ACTIVE:
            return  # connection dropped while the message was in flight
        if self._check is not None and msg.check_seq is not None:
            self._check.on_wire_delivery(*msg.check_seq)
        if self.on_message is not None:
            self.on_message(msg.payload, msg.size, self)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self, notify_peer: bool = True) -> None:
        """Abort the connection; queued and in-flight messages are lost."""
        if self.state in (ConnectionState.CLOSED, ConnectionState.FAILED):
            return
        self.state = ConnectionState.CLOSED
        self.flow.abort()
        for msg in self._pending:
            msg._sent(False)
        self._pending.clear()
        if self.on_closed is not None:
            self.on_closed(self)
        if notify_peer and self.peer is not None:
            peer = self.peer
            delay = self.flow.link_dir.spec.delay if self.flow.link_dir.up else 0.0
            self.stack.sim.schedule(delay, lambda: peer.close(notify_peer=False), label="conn-close")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Connection(#{self.id} {self.proto.value} {self.local}->{self.remote} "
            f"{self.state.value})"
        )
