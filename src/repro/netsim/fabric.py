"""The network fabric: hosts, links, routing and protocol parameters."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - structural typing only
    from typing import Protocol

    class TopologyLike(Protocol):
        hosts: Tuple[Tuple[str, str], ...]
        links: Tuple[Any, ...]

import networkx as nx

from repro.errors import AddressError, TransportError
from repro.kompics.config import Config
from repro.netsim.routing import CompositePath
from repro.netsim.congestion import CcSpec, CongestionControl, make_cc
from repro.netsim.disk import DiskModel
from repro.netsim.host import NetworkStack, SimHost
from repro.netsim.link import Link, LinkDirection, LinkSpec, Proto
from repro.obs import get_registry, get_tracer
from repro.sim import Simulator
from repro.util.ids import IdGenerator
from repro.util.rng import RngRegistry

NETSIM_DEFAULTS = {
    # TCP socket buffers; min(send, receive) caps the window (BDP limit).
    "net.tcp.send_buffer": 8 * 1024 * 1024,
    "net.tcp.receive_buffer": 8 * 1024 * 1024,
    # UDT buffers: the paper raised Netty-UDT's 12 MB default to 100 MB to
    # avoid receiver-side loss on high-BDP links (§V-A).
    "net.udt.receive_buffer": 100 * 1024 * 1024,
    # UDT implementation processing cap ("limited by internal queue and
    # buffer sizes" on loopback, §V-B).
    "net.udt.max_rate": 40 * 1024 * 1024,
    "net.udp.socket_buffer": 2 * 1024 * 1024,
    # Default congestion-control policy per wire protocol: registry names
    # resolved against repro.netsim.congestion.CC_POLICIES.  Overriding
    # these (or passing cc= to connect()) swaps the policy without
    # touching the datapath.
    "net.cc.tcp": "reno",
    "net.cc.udt": "udt",
    "net.cc.udp": "udp",
    "net.cc.ledbat": "ledbat",
    # Loopback interface for same-host (and same-node dual-instance) traffic.
    "net.loopback.bandwidth": 150 * 1024 * 1024,
    "net.loopback.delay": 25e-6,
}


class SimNetwork:
    """Registry of hosts and links plus the factory for protocol state."""

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        config: Optional[Mapping[str, Any]] = None,
        connect_timeout: float = 5.0,
    ) -> None:
        self.sim = sim
        self.rngs = RngRegistry(seed).fork("netsim")
        self.config = Config(NETSIM_DEFAULTS).with_overrides(config or {})
        self.ids = IdGenerator()
        self.connect_timeout = connect_timeout
        self.metrics = get_registry()
        self.tracer = get_tracer()
        if self.tracer.enabled:
            self.tracer.use_clock(sim.clock)
        self.hosts: Dict[str, SimHost] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._loopbacks: Dict[str, Link] = {}
        self._graph = nx.Graph()
        self._route_cache: Dict[Tuple[str, str], CompositePath] = {}

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, ip: str, disk: Optional[DiskModel] = None) -> SimHost:
        if ip in self.hosts:
            raise AddressError(f"duplicate host ip {ip}")
        host = SimHost(self, name, ip, disk)
        self.hosts[ip] = host
        loopback_spec = LinkSpec(
            bandwidth=self.config.get_float("net.loopback.bandwidth"),
            delay=self.config.get_float("net.loopback.delay"),
        )
        self._loopbacks[ip] = Link(ip, ip, loopback_spec)
        return host

    def connect_hosts(
        self, a: SimHost, b: SimHost, spec: LinkSpec, spec_reverse: Optional[LinkSpec] = None
    ) -> Link:
        """Create a duplex point-to-point link between two hosts."""
        key = (a.ip, b.ip)
        if key in self.links or (b.ip, a.ip) in self.links:
            raise AddressError(f"link {a.ip}<->{b.ip} already exists")
        link = Link(a.ip, b.ip, spec, spec_reverse)
        self.links[key] = link
        self._graph.add_edge(a.ip, b.ip, delay=spec.delay, link=link)
        self._route_cache.clear()
        return link

    # ------------------------------------------------------------------
    # fleet-scale wiring helpers
    # ------------------------------------------------------------------
    def host(self, ip: str) -> SimHost:
        """Look a host up by IP (the key topology plans carry)."""
        host = self.hosts.get(ip)
        if host is None:
            raise AddressError(f"unknown host {ip}")
        return host

    def add_hosts(self, named: Iterable[Tuple[str, str]]) -> List[SimHost]:
        """Create many hosts from ``(name, ip)`` pairs, in order."""
        return [self.add_host(name, ip) for name, ip in named]

    def connect_ips(
        self, ip_a: str, ip_b: str, spec: LinkSpec, spec_reverse: Optional[LinkSpec] = None
    ) -> Link:
        """Like :meth:`connect_hosts`, addressing endpoints by IP."""
        return self.connect_hosts(self.host(ip_a), self.host(ip_b), spec, spec_reverse)

    def apply_topology(self, topology: "TopologyLike") -> List[SimHost]:
        """Instantiate a generated topology plan onto this fabric.

        ``topology`` is duck-typed (netsim stays independent of the bench
        layer): it needs ``hosts`` as ``(name, ip)`` pairs and ``links``
        as objects with ``a``/``b`` IPs and a ``spec`` (optionally
        ``spec_reverse``).  Returns the created hosts in plan order.
        """
        hosts = self.add_hosts(topology.hosts)
        for plan in topology.links:
            self.connect_ips(
                plan.a, plan.b, plan.spec, getattr(plan, "spec_reverse", None)
            )
        return hosts

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def path(self, src_ip: str, dst_ip: str):
        """The direction (or multi-hop composite path) from src to dst.

        Direct links are returned as their :class:`LinkDirection`; hosts
        without a direct link are joined by the delay-shortest chain of
        links (static routing, cached until the topology changes).
        """
        if src_ip == dst_ip:
            loop = self._loopbacks.get(src_ip)
            if loop is None:
                raise AddressError(f"unknown host {src_ip}")
            return loop.forward
        link = self.links.get((src_ip, dst_ip))
        if link is not None:
            return link.forward
        link = self.links.get((dst_ip, src_ip))
        if link is not None:
            return link.backward
        return self._routed_path(src_ip, dst_ip)

    def _routed_path(self, src_ip: str, dst_ip: str) -> CompositePath:
        cached = self._route_cache.get((src_ip, dst_ip))
        if cached is not None:
            return cached
        if src_ip not in self._graph or dst_ip not in self._graph:
            raise AddressError(f"no route from {src_ip} to {dst_ip}")
        try:
            hops = nx.shortest_path(self._graph, src_ip, dst_ip, weight="delay")
        except nx.NetworkXNoPath:
            raise AddressError(f"no route from {src_ip} to {dst_ip}") from None
        directions = [
            self.link_between(a, b).direction(a, b) for a, b in zip(hops, hops[1:])
        ]
        composite = CompositePath(directions)
        self._route_cache[(src_ip, dst_ip)] = composite
        return composite

    def link_between(self, ip_a: str, ip_b: str) -> Link:
        if ip_a == ip_b:
            return self._loopbacks[ip_a]
        link = self.links.get((ip_a, ip_b)) or self.links.get((ip_b, ip_a))
        if link is None:
            raise AddressError(f"no link between {ip_a} and {ip_b}")
        return link

    def stack_for(self, ip: str) -> NetworkStack:
        host = self.hosts.get(ip)
        if host is None:
            raise AddressError(f"unknown host {ip}")
        return host.stack

    def refresh_rtts(self) -> int:
        """Propagate changed link delays into live connections' RTTs.

        Connections sample the path RTT at dial time (like a kernel's
        smoothed RTT, which would converge on its own); after a link spec
        change this pushes the new value into every live controller.
        Returns the number of connections updated.
        """
        from repro.netsim.connection import ConnectionState

        self.tracer.event("netsim.rtt_refresh")
        updated = 0
        for host in self.hosts.values():
            for conn in host.stack.connections:
                if conn.state not in (ConnectionState.ACTIVE, ConnectionState.CONNECTING):
                    continue
                try:
                    out_dir = self.path(conn.local[0], conn.remote[0])
                    back_dir = self.path(conn.remote[0], conn.local[0])
                except AddressError:  # pragma: no cover - topology shrank
                    continue
                rtt = max(out_dir.spec.delay + back_dir.spec.delay, 1e-5)
                if hasattr(conn.flow.cc, "rtt"):
                    conn.flow.cc.rtt = rtt
                    conn.flow.link_dir.demand_dirty()
                    updated += 1
        return updated

    # ------------------------------------------------------------------
    # protocol parameters
    # ------------------------------------------------------------------
    def make_congestion_control(
        self,
        proto: Proto,
        rtt: float,
        out_dir: LinkDirection,
        cc: Optional[CcSpec] = None,
    ) -> CongestionControl:
        """Build the congestion controller for a dialing connection.

        The policy is resolved from the registry: an explicit ``cc=`` spec
        wins, otherwise the ``net.cc.<proto>`` config key names the
        default (``reno``/``udt``/``udp``/``ledbat``, matching the
        historical hard-coded controllers byte-for-byte).
        """
        if cc is None:
            key = f"net.cc.{proto.value}"
            cc = self.config.get(key, None)
            if cc is None:
                raise TransportError(f"unsupported protocol {proto!r}")
        return make_cc(
            cc,
            rtt=rtt,
            bandwidth=out_dir.spec.bandwidth,
            udp_cap=out_dir.spec.udp_cap,
            config=self.config,
        )
