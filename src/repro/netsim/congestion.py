"""Fluid-flow congestion-control models and the pluggable policy registry.

Each reliable connection direction owns a controller that answers "how fast
does the protocol want to send right now?" (``demand_rate``) and reacts to
ack-credit (``on_bytes_sent``) and loss signals (``on_loss``).  Because the
sender self-paces at ``cwnd/RTT``, window growth per acked byte reproduces
the per-RTT dynamics of the real protocols without explicit ack events:
transmitting ``cwnd`` bytes takes exactly one RTT, so slow start doubles
per RTT and congestion avoidance gains one MSS per RTT.

Controllers are *policies*, not transports: connections look them up by
name in :data:`CC_POLICIES` (see ``docs/congestion.md``), so new variants
are drop-in scenario axes — and new arms for the RL selector — without
touching the datapath.  The built-in catalog covers the paper's pair
(Reno-style ``reno``, DAIMD ``udt``) plus ``cubic`` (window growth as a
cubic of time since the last loss) and ``bbr`` (rate pacing with a
gain-cycling probe phase), with ``udp`` and ``ledbat`` rounding out the
protocol set.
"""

from __future__ import annotations

import difflib
import importlib
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

MSS = 1448.0  # bytes of payload per TCP segment


class CongestionControl(ABC):
    """Protocol behaviour of one connection direction."""

    #: reliable protocols retransmit (loss only slows them down)
    reliable: bool = True
    #: FIFO delivery order maintained end-to-end
    ordered: bool = True
    #: subject to the link's UDP policing pool
    subject_to_udp_cap: bool = False
    #: scavenger protocols only get bandwidth foreground flows leave over
    scavenger: bool = False
    #: True when ``demand_rate`` depends on ``now`` (not only on controller
    #: state), e.g. UDT's SYN-interval ramping.  The allocation-epoch cache
    #: (``fastpath.ALLOC_EPOCH``) only reuses an allocation across
    #: timestamps when every participating controller is time-invariant.
    demand_time_varying: bool = False
    def __init__(self) -> None:
        #: Generation counter for demand-relevant state.  Implementations
        #: bump it whenever a signal (``on_bytes_sent``/``on_loss``/external
        #: writes) actually changes the value ``demand_rate`` would return;
        #: the allocation-epoch cache uses it to detect staleness without
        #: re-querying (queries may mutate state).  A pegged controller
        #: (e.g. TCP at ``wnd_max``) keeps its generation, which is what
        #: makes steady-state allocations cacheable.  A true instance
        #: attribute — a shared class default mutated in place would alias
        #: generation state across every controller on a link.
        self.demand_gen: int = 0

    @abstractmethod
    def demand_rate(self, now: float) -> float:
        """Bytes/second the protocol is willing to push right now.

        Contract for the allocation-epoch cache: calling this twice at the
        same ``now`` with unchanged state must return the same value, and
        the second call must not change observable state (idempotence
        within a timestamp).  All built-in controllers satisfy this.
        """

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        """Credit ``nbytes`` transmitted (and, in the fluid model, acked)."""

    def on_loss(self, now: float) -> None:
        """React to a loss signal."""

    def on_transmit_complete(self, now: float) -> None:
        """Per-message hook after credit/loss accounting at completion.

        Policies with extra completion-time machinery override this (UDT
        uses it for its receive-buffer overshoot check); the flow engine
        only invokes overridden implementations, so the default costs
        nothing on the hot path.
        """

    # ------------------------------------------------------------------
    # side-effect-free introspection (observability gauges sample these at
    # snapshot time; unlike demand_rate they must not mutate state)
    # ------------------------------------------------------------------
    def window_bytes(self) -> float:
        """Current effective congestion window, in bytes."""
        return math.nan

    def current_rate(self) -> float:
        """Current pacing rate, bytes/second, without rate-control updates."""
        return math.nan


class TcpCc(CongestionControl):
    """TCP Reno-style slow start + AIMD with a window cap.

    The window cap ``wnd_max = min(send_buffer, receive_buffer)`` models the
    socket-buffer/BDP throughput limit that makes TCP collapse on
    high-RTT links (paper §I, §V-B), and random loss triggers at most one
    multiplicative decrease per RTT (a loss episode).
    """

    subject_to_udp_cap = False

    def __init__(
        self,
        rtt: float,
        send_buffer: float = 8 * 1024 * 1024,
        receive_buffer: float = 8 * 1024 * 1024,
        initial_cwnd_segments: int = 10,
    ) -> None:
        super().__init__()
        self.rtt = max(rtt, 1e-5)
        self.wnd_max = min(send_buffer, receive_buffer)
        self.cwnd = initial_cwnd_segments * MSS
        self.ssthresh = math.inf
        self._last_md = -math.inf
        self.loss_episodes = 0

    def demand_rate(self, now: float) -> float:
        wnd = self.cwnd
        floor = 2 * MSS
        if wnd < floor:
            wnd = floor
        wnd_max = self.wnd_max
        if wnd > wnd_max:
            wnd = wnd_max
        return wnd / self.rtt

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            cwnd += nbytes  # slow start: double per RTT
        else:
            cwnd += MSS * nbytes / cwnd  # CA: +MSS per RTT
        if cwnd > self.wnd_max:
            cwnd = self.wnd_max
        if cwnd != self.cwnd:
            self.cwnd = cwnd
            self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        if now - self._last_md < self.rtt:
            return  # one decrease per loss episode
        self._last_md = now
        self.loss_episodes += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * MSS)
        if self.cwnd != self.ssthresh:
            self.cwnd = self.ssthresh
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return min(max(self.cwnd, 2 * MSS), self.wnd_max)

    def current_rate(self) -> float:
        return self.window_bytes() / self.rtt


class UdtCc(CongestionControl):
    """UDT's DAIMD rate control, simplified to its fluid behaviour.

    The rate ramps toward the estimated available bandwidth every SYN
    interval (10 ms) — independent of the RTT, which is what makes UDT
    strong on high-BDP links — and decreases by the factor 1/9 on a loss
    event (UDT's NAK response).  A finite receive buffer combined with the
    one-RTT-stale feedback loop causes overshoot losses on high-BDP paths
    when the buffer is small: this models the paper's observation (§V-A)
    that Netty-UDT's default 12 MB buffers had to be raised to 100 MB.
    """

    subject_to_udp_cap = True
    #: the SYN-interval ramp makes demand a function of time, not just
    #: state; the allocation-epoch cache must re-solve at new timestamps
    demand_time_varying = True

    SYN = 0.01  # UDT rate-control interval, seconds
    DECREASE = 1.0 - 1.0 / 9.0  # multiplicative decrease factor
    BURST_FACTOR = 8.0  # burstiness multiplier for buffer-overshoot check

    def __init__(
        self,
        rtt: float,
        bandwidth_estimate: float,
        receive_buffer: float = 100 * 1024 * 1024,
        initial_rate: float = 128 * 1024,
        min_rate: float = 64 * 1024,
        max_rate: float = math.inf,
    ) -> None:
        super().__init__()
        self.rtt = max(rtt, 1e-5)
        self.bandwidth_estimate = bandwidth_estimate
        self.receive_buffer = receive_buffer
        self.rate = initial_rate
        self.min_rate = min_rate
        self.max_rate = max_rate
        self._last_increase = -math.inf
        self.loss_events = 0
        self.buffer_overflows = 0

    def demand_rate(self, now: float) -> float:
        self._maybe_increase(now)
        rate = self.rate
        if rate < self.min_rate:
            rate = self.min_rate
        if rate > self.max_rate:
            rate = self.max_rate
        return rate

    def _maybe_increase(self, now: float) -> None:
        last = self._last_increase
        if now - last < self.SYN:
            return
        # Multiple SYN intervals may have elapsed while idle; apply each.
        intervals = 1
        if last > -math.inf:
            intervals = max(1, int((now - last) / self.SYN))
            intervals = min(intervals, 1000)
        rate = self.rate
        estimate = self.bandwidth_estimate
        max_rate = self.max_rate
        probe = 10 * MSS
        for _ in range(intervals):
            gap = estimate - rate
            step = max(gap * 0.05, 0.0) + probe  # probe even at estimate
            rate = min(rate + step, max_rate)
        self.rate = rate
        self._last_increase = now

    def check_receive_buffer(self, now: float) -> bool:
        """Overshoot check: stale feedback lets ~BURST_FACTOR * rate * (RTT+SYN)
        bytes pile up at the receiver; beyond the buffer they are dropped.

        Returns True (and applies the loss response) when overflow occurs.
        """
        in_flight = self.rate * (self.rtt + self.SYN) * self.BURST_FACTOR
        if in_flight > self.receive_buffer:
            self.buffer_overflows += 1
            self.on_loss(now)
            return True
        return False

    def on_transmit_complete(self, now: float) -> None:
        # Receive-buffer overshoot acts as an additional loss signal but
        # the data is retransmitted (reliable), so delivery still happens.
        self.check_receive_buffer(now)

    def on_loss(self, now: float) -> None:
        self.loss_events += 1
        rate = max(self.rate * self.DECREASE, self.min_rate)
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return self.current_rate() * self.rtt

    def current_rate(self) -> float:
        return min(max(self.rate, self.min_rate), self.max_rate)


class UdpCc(CongestionControl):
    """UDP: no congestion control, no reliability, no ordering."""

    reliable = False
    ordered = False
    subject_to_udp_cap = True

    def demand_rate(self, now: float) -> float:
        return math.inf


class LedbatCc(CongestionControl):
    """LEDBAT (RFC 6817): reliable background transport that yields.

    LEDBAT targets a small queueing delay and backs off long before
    loss-based protocols do, making it *less than best effort*: it soaks
    up spare capacity and vanishes when foreground traffic appears.  The
    fluid model captures exactly that semantics through the scavenger
    allocation tier (see ``LinkDirection.allocate_rate``); the controller
    itself ramps gently toward the spare-capacity estimate (GAIN = 1 per
    RTT) and halves on loss, per the RFC's slow-start-less dynamics.

    The paper implemented LEDBAT over Kompics/Netty/UDP before moving to
    UDT (§I) and names other protocols as extension targets for the DATA
    selector (§IV); this class is that extension hook.
    """

    subject_to_udp_cap = True
    scavenger = True

    def __init__(
        self,
        rtt: float,
        bandwidth_estimate: float,
        initial_rate: float = 64 * 1024,
        min_rate: float = 16 * 1024,
    ) -> None:
        super().__init__()
        self.rtt = max(rtt, 1e-5)
        self.bandwidth_estimate = bandwidth_estimate
        self.rate = initial_rate
        self.min_rate = min_rate
        self.loss_events = 0

    def demand_rate(self, now: float) -> float:
        return max(self.rate, self.min_rate)

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        # Additive increase of ~one rate-quantum per RTT worth of data,
        # never asking beyond the link estimate (the scavenger tier clips
        # the actual allocation to spare capacity anyway).
        rate = min(
            self.rate + (nbytes / self.rtt) * 0.10,
            self.bandwidth_estimate,
        )
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        self.loss_events += 1
        rate = max(self.rate / 2.0, self.min_rate)
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return self.current_rate() * self.rtt

    def current_rate(self) -> float:
        return max(self.rate, self.min_rate)


class CubicCc(CongestionControl):
    """CUBIC-style window growth (RFC 8312's fluid skeleton).

    Between losses the window chases ``W(t) = C·(t−K)³ + W_max`` (in
    segments), where ``t`` is the time since the last multiplicative
    decrease and ``K = ∛(W_max·(1−β)/C)`` is when the cubic recrosses the
    pre-loss plateau — fast recovery toward ``W_max``, a cautious plateau
    around it, then aggressive probing beyond.  Growth is still
    ack-clocked: per completion the window moves toward the cubic target
    but never faster than slow start (one byte per acked byte), so demand
    stays a pure function of controller state and the allocation-epoch
    cache needs no timestamping (``demand_time_varying`` stays False).
    Before the first loss the controller is in Reno-style slow start.
    """

    C = 0.4  # cubic coefficient, segments / s^3 (RFC 8312 default)
    BETA = 0.7  # multiplicative decrease factor (RFC 8312 default)

    def __init__(
        self,
        rtt: float,
        send_buffer: float = 8 * 1024 * 1024,
        receive_buffer: float = 8 * 1024 * 1024,
        initial_cwnd_segments: int = 10,
    ) -> None:
        super().__init__()
        self.rtt = max(rtt, 1e-5)
        self.wnd_max = min(send_buffer, receive_buffer)
        self.cwnd = initial_cwnd_segments * MSS
        self.ssthresh = math.inf
        self._w_max = 0.0  # plateau window at the last loss, segments
        self._k = 0.0  # seconds from loss to plateau recrossing
        self._epoch_start = -math.inf  # time of the last loss response
        self._last_md = -math.inf
        self.loss_episodes = 0

    def demand_rate(self, now: float) -> float:
        wnd = self.cwnd
        floor = 2 * MSS
        if wnd < floor:
            wnd = floor
        wnd_max = self.wnd_max
        if wnd > wnd_max:
            wnd = wnd_max
        return wnd / self.rtt

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            cwnd += nbytes  # slow start: double per RTT
        else:
            # Chase the cubic target, ack-clocked: never more than one
            # byte of window per acked byte (W(t) is >= cwnd for t >= 0,
            # so the window is monotone between losses).
            t = now - self._epoch_start
            target = (self.C * (t - self._k) ** 3 + self._w_max) * MSS
            if target > cwnd:
                grown = cwnd + nbytes
                cwnd = target if target < grown else grown
        if cwnd > self.wnd_max:
            cwnd = self.wnd_max
        if cwnd != self.cwnd:
            self.cwnd = cwnd
            self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        if now - self._last_md < self.rtt:
            return  # one decrease per loss episode
        self._last_md = now
        self.loss_episodes += 1
        w = max(self.cwnd, 2 * MSS)
        self._w_max = w / MSS
        self._k = (self._w_max * (1.0 - self.BETA) / self.C) ** (1.0 / 3.0)
        self._epoch_start = now
        cwnd = max(w * self.BETA, 2 * MSS)
        self.ssthresh = cwnd
        if cwnd != self.cwnd:
            self.cwnd = cwnd
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return min(max(self.cwnd, 2 * MSS), self.wnd_max)

    def current_rate(self) -> float:
        return self.window_bytes() / self.rtt


class BbrCc(CongestionControl):
    """BBR-style rate pacing: model the pipe, don't fill the queue.

    Two phases of BBRv1's state machine, in fluid form:

    * **startup** — the pacing rate doubles per RTT (ack-clocked, like
      slow start in rate space) until it reaches the bottleneck-bandwidth
      estimate, or a loss declares the pipe full.
    * **probe** — an eight-phase pacing-gain cycle ``1.25, 0.75, 1, …``
      of one RTT each: probe above the estimate, drain the queue it
      built, then cruise.  The phase is a pure function of ``now`` and
      controller state, which makes demand *time-varying*:
      ``demand_time_varying = True`` forces the allocation-epoch cache to
      re-solve at new timestamps, while ``demand_gen`` still tracks the
      signal-driven state (estimate moves, phase re-anchoring) so cached
      allocations within one timestamp stay valid.  ``demand_rate`` never
      mutates state — idempotence within a timestamp holds trivially.

    Loss is mostly ignored (BBR is not loss-based); a modest estimate
    decay on loss events keeps the model from camping on a stale estimate
    when the path degrades, and delivery credit ramps it back.
    """

    demand_time_varying = True

    CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    LOSS_DECAY = 0.95  # gentle estimate decay per loss episode

    def __init__(
        self,
        rtt: float,
        bandwidth_estimate: float,
        initial_rate: float = 128 * 1024,
        min_rate: float = 64 * 1024,
        max_rate: float = math.inf,
    ) -> None:
        super().__init__()
        self.rtt = max(rtt, 1e-5)
        self.bandwidth_estimate = bandwidth_estimate
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.rate = max(initial_rate, min_rate)  # startup pacing rate
        self.btl_bw = self.rate  # bottleneck estimate once probing
        self.startup = True
        self._cycle_start = 0.0
        self._last_md = -math.inf
        self.loss_events = 0

    def _clip(self, rate: float) -> float:
        if rate < self.min_rate:
            return self.min_rate
        if rate > self.max_rate:
            return self.max_rate
        return rate

    def demand_rate(self, now: float) -> float:
        if self.startup:
            return self._clip(self.rate)
        phase = int((now - self._cycle_start) / self.rtt) % len(self.CYCLE_GAINS)
        return self._clip(self.btl_bw * self.CYCLE_GAINS[phase])

    def _enter_probe(self, rate: float, now: float) -> None:
        self.startup = False
        self.btl_bw = self._clip(rate)
        self._cycle_start = now
        self.demand_gen += 1

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        if self.startup:
            # Rate doubles per RTT: at pacing rate r the controller sends
            # r·RTT bytes per RTT, so crediting nbytes/RTT adds r per RTT.
            rate = self.rate + nbytes / self.rtt
            if rate >= min(self.bandwidth_estimate, self.max_rate):
                self._enter_probe(rate, now)
            elif rate != self.rate:
                self.rate = rate
                self.demand_gen += 1
            return
        if self.btl_bw < self.bandwidth_estimate:
            # Post-loss recovery: delivered bytes ramp the estimate back
            # toward the configured ceiling, about one MSS per BDP acked.
            bdp = self.btl_bw * self.rtt
            grown = min(self.btl_bw + MSS * nbytes / max(bdp, MSS),
                        self.bandwidth_estimate)
            if grown != self.btl_bw:
                self.btl_bw = grown
                self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        if now - self._last_md < self.rtt:
            return  # one response per loss episode
        self._last_md = now
        self.loss_events += 1
        if self.startup:
            # Full-pipe signal: leave startup at the current rate.
            self._enter_probe(self.rate, now)
            return
        decayed = max(self.btl_bw * self.LOSS_DECAY, self.min_rate)
        if decayed != self.btl_bw:
            self.btl_bw = decayed
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return self.current_rate() * self.rtt

    def current_rate(self) -> float:
        return self._clip(self.rate if self.startup else self.btl_bw)


# ----------------------------------------------------------------------
# the policy registry: name -> controller factory
# ----------------------------------------------------------------------

class UnknownCcError(KeyError):
    """Raised on a lookup of a name no policy was registered under."""

    def __str__(self) -> str:  # KeyError wraps its message in repr()
        return self.args[0] if self.args else ""


class DuplicateCcError(ValueError):
    """Raised when a second factory is registered under an existing name."""


@dataclass(frozen=True)
class CcContext:
    """Everything a policy factory may consult when building a controller.

    ``rtt``/``bandwidth``/``udp_cap`` describe the dialed path; ``config``
    is the owning network's :class:`~repro.kompics.config.Config` (or None
    when built standalone — factories fall back to the netsim defaults);
    ``params`` are per-spec overrides forwarded to the constructor.
    """

    rtt: float = 0.1
    bandwidth: float = math.inf
    udp_cap: Optional[float] = None
    config: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def get_float(self, key: str, default: float) -> float:
        if self.config is None:
            return default
        return self.config.get_float(key, default)


CcFactory = Callable[[CcContext], CongestionControl]

#: accepted ``cc=`` spec shapes: a registered/dotted name, a
#: ``(name, params)`` pair, or a ready-made factory callable
CcSpec = Union[str, Tuple[str, Mapping[str, Any]], CcFactory]


@dataclass(frozen=True)
class CcPolicy:
    """One registered congestion-control policy."""

    name: str
    factory: CcFactory
    description: str = ""

    def build(self, ctx: CcContext) -> CongestionControl:
        return self.factory(ctx)


class CcRegistry:
    """Name -> :class:`CcPolicy`, with strict registration semantics.

    Mirrors :class:`repro.bench.scenario.ScenarioRegistry`: registering a
    taken name raises instead of silently shadowing, and unknown lookups
    fail with a did-you-mean suggestion.  Names containing a dot are
    resolved as ``package.module:attr`` (or ``package.module.attr``)
    imports, so out-of-tree controllers are usable without registration.
    """

    def __init__(self) -> None:
        self._policies: Dict[str, CcPolicy] = {}

    def register(
        self, name: str, factory: CcFactory, *, description: str = ""
    ) -> CcPolicy:
        if name in self._policies:
            raise DuplicateCcError(
                f"congestion-control policy {name!r} is already registered "
                f"(by {self._policies[name].factory!r}); "
                f"pick a distinct name or remove() the old entry first"
            )
        policy = CcPolicy(name=name, factory=factory, description=description)
        self._policies[name] = policy
        return policy

    def remove(self, name: str) -> None:
        """Drop a registration (test hygiene; unknown names are a no-op)."""
        self._policies.pop(name, None)

    def get(self, name: str) -> CcPolicy:
        policy = self._policies.get(name)
        if policy is not None:
            return policy
        if "." in name:
            return self._import_dotted(name)
        close = difflib.get_close_matches(name, sorted(self._policies), n=3)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close else ""
        )
        raise UnknownCcError(
            f"unknown congestion-control policy {name!r}{hint} "
            f"(registered: {', '.join(sorted(self._policies))})"
        )

    def _import_dotted(self, name: str) -> CcPolicy:
        """Resolve ``pkg.mod:attr`` / ``pkg.mod.attr`` to a factory."""
        module_name, sep, attr = name.partition(":")
        if not sep:
            module_name, _, attr = name.rpartition(".")
        try:
            module = importlib.import_module(module_name)
            factory = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise UnknownCcError(
                f"cannot import congestion-control policy {name!r}: {exc}"
            ) from exc
        if isinstance(factory, type) and issubclass(factory, CongestionControl):
            cls = factory
            return CcPolicy(name=name, factory=lambda ctx: cls(rtt=ctx.rtt, **ctx.params))
        return CcPolicy(name=name, factory=factory)

    def __contains__(self, name: str) -> bool:
        return name in self._policies

    def names(self) -> List[str]:
        return sorted(self._policies)

    def all(self) -> List[CcPolicy]:
        return [self._policies[name] for name in sorted(self._policies)]


#: the process-wide policy registry; connections resolve ``cc=`` specs here
CC_POLICIES = CcRegistry()


def register_cc(name: str, factory: CcFactory, *, description: str = "") -> CcPolicy:
    return CC_POLICIES.register(name, factory, description=description)


def cc_names() -> List[str]:
    return CC_POLICIES.names()


def parse_cc_spec(spec: CcSpec) -> Tuple[Optional[str], Mapping[str, Any], Optional[CcFactory]]:
    """Normalize a ``cc=`` spec to ``(name, params, factory)``."""
    if isinstance(spec, str):
        return spec, {}, None
    if isinstance(spec, (tuple, list)) and len(spec) == 2 and isinstance(spec[0], str):
        return spec[0], dict(spec[1] or {}), None
    if callable(spec):
        return None, {}, spec
    raise TypeError(
        f"cc spec must be a name, a (name, params) pair or a factory, "
        f"not {spec!r}"
    )


def make_cc(
    spec: CcSpec,
    *,
    rtt: float = 0.1,
    bandwidth: float = math.inf,
    udp_cap: Optional[float] = None,
    config: Any = None,
    params: Optional[Mapping[str, Any]] = None,
) -> CongestionControl:
    """Build a controller from a spec and the dialed path's context."""
    name, spec_params, factory = parse_cc_spec(spec)
    merged = dict(spec_params)
    if params:
        merged.update(params)
    ctx = CcContext(rtt=rtt, bandwidth=bandwidth, udp_cap=udp_cap,
                    config=config, params=merged)
    if factory is not None:
        return factory(ctx)
    assert name is not None
    return CC_POLICIES.get(name).build(ctx)


# ----------------------------------------------------------------------
# built-in policies (parameter resolution matches the historical
# hard-coded construction in SimNetwork.make_congestion_control exactly,
# so default runs are byte-identical)
# ----------------------------------------------------------------------

def _buffered_window_kwargs(ctx: CcContext) -> Dict[str, Any]:
    kw: Dict[str, Any] = dict(
        rtt=ctx.rtt,
        send_buffer=ctx.get_float("net.tcp.send_buffer", 8 * 1024 * 1024),
        receive_buffer=ctx.get_float("net.tcp.receive_buffer", 8 * 1024 * 1024),
    )
    kw.update(ctx.params)
    return kw


def _reno_factory(ctx: CcContext) -> CongestionControl:
    return TcpCc(**_buffered_window_kwargs(ctx))


def _cubic_factory(ctx: CcContext) -> CongestionControl:
    return CubicCc(**_buffered_window_kwargs(ctx))


def _capped_estimate(ctx: CcContext, ceiling: float = math.inf) -> float:
    cap = ctx.udp_cap if ctx.udp_cap is not None else math.inf
    return min(ctx.bandwidth, cap, ceiling)


def _udt_factory(ctx: CcContext) -> CongestionControl:
    max_rate = ctx.get_float("net.udt.max_rate", 40 * 1024 * 1024)
    kw: Dict[str, Any] = dict(
        rtt=ctx.rtt,
        bandwidth_estimate=_capped_estimate(ctx, max_rate),
        receive_buffer=ctx.get_float("net.udt.receive_buffer", 100 * 1024 * 1024),
        max_rate=max_rate,
    )
    kw.update(ctx.params)
    return UdtCc(**kw)


def _bbr_factory(ctx: CcContext) -> CongestionControl:
    kw: Dict[str, Any] = dict(
        rtt=ctx.rtt,
        bandwidth_estimate=min(ctx.bandwidth,
                               ctx.get_float("net.bbr.max_rate", math.inf)),
    )
    kw.update(ctx.params)
    return BbrCc(**kw)


def _udp_factory(ctx: CcContext) -> CongestionControl:
    return UdpCc()


def _ledbat_factory(ctx: CcContext) -> CongestionControl:
    kw: Dict[str, Any] = dict(
        rtt=ctx.rtt, bandwidth_estimate=_capped_estimate(ctx),
    )
    kw.update(ctx.params)
    return LedbatCc(**kw)


register_cc("reno", _reno_factory,
            description="TCP Reno: slow start + AIMD, socket-buffer window cap")
register_cc("cubic", _cubic_factory,
            description="CUBIC window growth: cubic-of-time recovery/probe around W_max")
register_cc("bbr", _bbr_factory,
            description="BBR rate pacing: startup doubling, then a gain-cycled probe")
register_cc("udt", _udt_factory,
            description="UDT DAIMD rate control (SYN-interval ramp, x8/9 decrease)")
register_cc("udp", _udp_factory,
            description="no congestion control, unreliable, unordered")
register_cc("ledbat", _ledbat_factory,
            description="LEDBAT scavenger: yields to any foreground traffic")
