"""Fluid-flow congestion-control models.

Each reliable connection direction owns a controller that answers "how fast
does the protocol want to send right now?" (``demand_rate``) and reacts to
ack-credit (``on_bytes_sent``) and loss signals (``on_loss``).  Because the
sender self-paces at ``cwnd/RTT``, window growth per acked byte reproduces
the per-RTT dynamics of the real protocols without explicit ack events:
transmitting ``cwnd`` bytes takes exactly one RTT, so slow start doubles
per RTT and congestion avoidance gains one MSS per RTT.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

MSS = 1448.0  # bytes of payload per TCP segment


class CongestionControl(ABC):
    """Protocol behaviour of one connection direction."""

    #: reliable protocols retransmit (loss only slows them down)
    reliable: bool = True
    #: FIFO delivery order maintained end-to-end
    ordered: bool = True
    #: subject to the link's UDP policing pool
    subject_to_udp_cap: bool = False
    #: scavenger protocols only get bandwidth foreground flows leave over
    scavenger: bool = False
    #: True when ``demand_rate`` depends on ``now`` (not only on controller
    #: state), e.g. UDT's SYN-interval ramping.  The allocation-epoch cache
    #: (``fastpath.ALLOC_EPOCH``) only reuses an allocation across
    #: timestamps when every participating controller is time-invariant.
    demand_time_varying: bool = False
    #: Generation counter for demand-relevant state.  Implementations bump
    #: it whenever a signal (``on_bytes_sent``/``on_loss``/external writes)
    #: actually changes the value ``demand_rate`` would return; the
    #: allocation-epoch cache uses it to detect staleness without
    #: re-querying (queries may mutate state).  A pegged controller (e.g.
    #: TCP at ``wnd_max``) keeps its generation, which is what makes
    #: steady-state allocations cacheable.
    demand_gen: int = 0

    @abstractmethod
    def demand_rate(self, now: float) -> float:
        """Bytes/second the protocol is willing to push right now.

        Contract for the allocation-epoch cache: calling this twice at the
        same ``now`` with unchanged state must return the same value, and
        the second call must not change observable state (idempotence
        within a timestamp).  All built-in controllers satisfy this.
        """

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        """Credit ``nbytes`` transmitted (and, in the fluid model, acked)."""

    def on_loss(self, now: float) -> None:
        """React to a loss signal."""

    # ------------------------------------------------------------------
    # side-effect-free introspection (observability gauges sample these at
    # snapshot time; unlike demand_rate they must not mutate state)
    # ------------------------------------------------------------------
    def window_bytes(self) -> float:
        """Current effective congestion window, in bytes."""
        return math.nan

    def current_rate(self) -> float:
        """Current pacing rate, bytes/second, without rate-control updates."""
        return math.nan


class TcpCc(CongestionControl):
    """TCP Reno-style slow start + AIMD with a window cap.

    The window cap ``wnd_max = min(send_buffer, receive_buffer)`` models the
    socket-buffer/BDP throughput limit that makes TCP collapse on
    high-RTT links (paper §I, §V-B), and random loss triggers at most one
    multiplicative decrease per RTT (a loss episode).
    """

    subject_to_udp_cap = False

    def __init__(
        self,
        rtt: float,
        send_buffer: float = 8 * 1024 * 1024,
        receive_buffer: float = 8 * 1024 * 1024,
        initial_cwnd_segments: int = 10,
    ) -> None:
        self.rtt = max(rtt, 1e-5)
        self.wnd_max = min(send_buffer, receive_buffer)
        self.cwnd = initial_cwnd_segments * MSS
        self.ssthresh = math.inf
        self._last_md = -math.inf
        self.loss_episodes = 0

    def demand_rate(self, now: float) -> float:
        wnd = self.cwnd
        floor = 2 * MSS
        if wnd < floor:
            wnd = floor
        wnd_max = self.wnd_max
        if wnd > wnd_max:
            wnd = wnd_max
        return wnd / self.rtt

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            cwnd += nbytes  # slow start: double per RTT
        else:
            cwnd += MSS * nbytes / cwnd  # CA: +MSS per RTT
        if cwnd > self.wnd_max:
            cwnd = self.wnd_max
        if cwnd != self.cwnd:
            self.cwnd = cwnd
            self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        if now - self._last_md < self.rtt:
            return  # one decrease per loss episode
        self._last_md = now
        self.loss_episodes += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * MSS)
        if self.cwnd != self.ssthresh:
            self.cwnd = self.ssthresh
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return min(max(self.cwnd, 2 * MSS), self.wnd_max)

    def current_rate(self) -> float:
        return self.window_bytes() / self.rtt


class UdtCc(CongestionControl):
    """UDT's DAIMD rate control, simplified to its fluid behaviour.

    The rate ramps toward the estimated available bandwidth every SYN
    interval (10 ms) — independent of the RTT, which is what makes UDT
    strong on high-BDP links — and decreases by the factor 1/9 on a loss
    event (UDT's NAK response).  A finite receive buffer combined with the
    one-RTT-stale feedback loop causes overshoot losses on high-BDP paths
    when the buffer is small: this models the paper's observation (§V-A)
    that Netty-UDT's default 12 MB buffers had to be raised to 100 MB.
    """

    subject_to_udp_cap = True
    #: the SYN-interval ramp makes demand a function of time, not just
    #: state; the allocation-epoch cache must re-solve at new timestamps
    demand_time_varying = True

    SYN = 0.01  # UDT rate-control interval, seconds
    DECREASE = 1.0 - 1.0 / 9.0  # multiplicative decrease factor
    BURST_FACTOR = 8.0  # burstiness multiplier for buffer-overshoot check

    def __init__(
        self,
        rtt: float,
        bandwidth_estimate: float,
        receive_buffer: float = 100 * 1024 * 1024,
        initial_rate: float = 128 * 1024,
        min_rate: float = 64 * 1024,
        max_rate: float = math.inf,
    ) -> None:
        self.rtt = max(rtt, 1e-5)
        self.bandwidth_estimate = bandwidth_estimate
        self.receive_buffer = receive_buffer
        self.rate = initial_rate
        self.min_rate = min_rate
        self.max_rate = max_rate
        self._last_increase = -math.inf
        self.loss_events = 0
        self.buffer_overflows = 0

    def demand_rate(self, now: float) -> float:
        self._maybe_increase(now)
        rate = self.rate
        if rate < self.min_rate:
            rate = self.min_rate
        if rate > self.max_rate:
            rate = self.max_rate
        return rate

    def _maybe_increase(self, now: float) -> None:
        last = self._last_increase
        if now - last < self.SYN:
            return
        # Multiple SYN intervals may have elapsed while idle; apply each.
        intervals = 1
        if last > -math.inf:
            intervals = max(1, int((now - last) / self.SYN))
            intervals = min(intervals, 1000)
        rate = self.rate
        estimate = self.bandwidth_estimate
        max_rate = self.max_rate
        probe = 10 * MSS
        for _ in range(intervals):
            gap = estimate - rate
            step = max(gap * 0.05, 0.0) + probe  # probe even at estimate
            rate = min(rate + step, max_rate)
        self.rate = rate
        self._last_increase = now

    def check_receive_buffer(self, now: float) -> bool:
        """Overshoot check: stale feedback lets ~BURST_FACTOR * rate * (RTT+SYN)
        bytes pile up at the receiver; beyond the buffer they are dropped.

        Returns True (and applies the loss response) when overflow occurs.
        """
        in_flight = self.rate * (self.rtt + self.SYN) * self.BURST_FACTOR
        if in_flight > self.receive_buffer:
            self.buffer_overflows += 1
            self.on_loss(now)
            return True
        return False

    def on_loss(self, now: float) -> None:
        self.loss_events += 1
        rate = max(self.rate * self.DECREASE, self.min_rate)
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return self.current_rate() * self.rtt

    def current_rate(self) -> float:
        return min(max(self.rate, self.min_rate), self.max_rate)


class UdpCc(CongestionControl):
    """UDP: no congestion control, no reliability, no ordering."""

    reliable = False
    ordered = False
    subject_to_udp_cap = True

    def demand_rate(self, now: float) -> float:
        return math.inf


class LedbatCc(CongestionControl):
    """LEDBAT (RFC 6817): reliable background transport that yields.

    LEDBAT targets a small queueing delay and backs off long before
    loss-based protocols do, making it *less than best effort*: it soaks
    up spare capacity and vanishes when foreground traffic appears.  The
    fluid model captures exactly that semantics through the scavenger
    allocation tier (see ``LinkDirection.allocate_rate``); the controller
    itself ramps gently toward the spare-capacity estimate (GAIN = 1 per
    RTT) and halves on loss, per the RFC's slow-start-less dynamics.

    The paper implemented LEDBAT over Kompics/Netty/UDP before moving to
    UDT (§I) and names other protocols as extension targets for the DATA
    selector (§IV); this class is that extension hook.
    """

    subject_to_udp_cap = True
    scavenger = True

    def __init__(
        self,
        rtt: float,
        bandwidth_estimate: float,
        initial_rate: float = 64 * 1024,
        min_rate: float = 16 * 1024,
    ) -> None:
        self.rtt = max(rtt, 1e-5)
        self.bandwidth_estimate = bandwidth_estimate
        self.rate = initial_rate
        self.min_rate = min_rate
        self.loss_events = 0

    def demand_rate(self, now: float) -> float:
        return max(self.rate, self.min_rate)

    def on_bytes_sent(self, nbytes: int, now: float) -> None:
        # Additive increase of ~one rate-quantum per RTT worth of data,
        # never asking beyond the link estimate (the scavenger tier clips
        # the actual allocation to spare capacity anyway).
        rate = min(
            self.rate + (nbytes / self.rtt) * 0.10,
            self.bandwidth_estimate,
        )
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def on_loss(self, now: float) -> None:
        self.loss_events += 1
        rate = max(self.rate / 2.0, self.min_rate)
        if rate != self.rate:
            self.rate = rate
            self.demand_gen += 1

    def window_bytes(self) -> float:
        return self.current_rate() * self.rtt

    def current_rate(self) -> float:
        return max(self.rate, self.min_rate)
