"""Multi-hop routing: composite paths over several links.

The paper's testbeds are point-to-point pairs, but a middleware meant for
multi-datacenter and P2P deployments routes across networks.  The fabric
builds a link graph (networkx) and, when two hosts share no direct link,
returns a :class:`CompositePath` assembled from the delay-shortest chain
of link directions.  A composite path quacks like a single
``LinkDirection`` for the fluid transmission machinery:

* one-way delay is the sum of the hops;
* the achievable rate is the minimum of the per-hop max-min shares
  (flows register on every hop, so a shared bottleneck divides fairly
  among flows that only partially overlap);
* loss combines independently across hops;
* the path is up only while every hop is.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Tuple

from repro.netsim.link import LinkDirection, LinkSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.connection import FlowState


class CompositePath:
    """A chain of link directions presented as one direction."""

    def __init__(self, directions: Sequence[LinkDirection]) -> None:
        if not directions:
            raise ValueError("a path needs at least one hop")
        self._dirs: Tuple[LinkDirection, ...] = tuple(directions)
        self.name = " + ".join(d.name for d in self._dirs)
        caps = [d.spec.udp_cap for d in self._dirs if d.spec.udp_cap is not None]
        self.spec = LinkSpec(
            bandwidth=min(d.spec.bandwidth for d in self._dirs),
            delay=sum(d.spec.delay for d in self._dirs),
            loss=0.0,  # combined per-hop below, not via the spec
            udp_cap=min(caps) if caps else None,
            jitter=sum(d.spec.jitter for d in self._dirs),
        )
        self.bytes_carried = 0.0

    @property
    def directions(self) -> Tuple[LinkDirection, ...]:
        return self._dirs

    @property
    def up(self) -> bool:
        return all(d.up for d in self._dirs)

    # ------------------------------------------------------------------
    # flow registration: every hop sees the flow
    # ------------------------------------------------------------------
    def activate(self, flow: "FlowState") -> None:
        for d in self._dirs:
            d.activate(flow)

    def deactivate(self, flow: "FlowState") -> None:
        for d in self._dirs:
            d.deactivate(flow)

    def demand_dirty(self) -> None:
        for d in self._dirs:
            d.demand_dirty()

    def allocate_rate(self, flow: "FlowState") -> float:
        return max(min(d.allocate_rate(flow) for d in self._dirs), 1.0)

    # ------------------------------------------------------------------
    # wire accounting: every hop carries the bytes
    # ------------------------------------------------------------------
    def note_transmit(self, nbytes: int) -> None:
        self.bytes_carried += nbytes
        for d in self._dirs:
            d.note_transmit(nbytes)

    def note_drop(self) -> None:
        for d in self._dirs:
            d.note_drop()

    # ------------------------------------------------------------------
    # loss
    # ------------------------------------------------------------------
    def loss_probability(self, nbytes: int) -> float:
        survive = 1.0
        for d in self._dirs:
            survive *= 1.0 - d.loss_probability(nbytes)
        return 1.0 - survive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositePath({self.name})"


def single_hop_directions(direction) -> Tuple[LinkDirection, ...]:
    """Uniform access to the hop list of a LinkDirection or CompositePath."""
    if isinstance(direction, CompositePath):
        return direction.directions
    return (direction,)
