"""Links: bandwidth, delay, loss, UDP policing and max-min fair sharing."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.check import get_checker
from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.connection import FlowState

PACKET_SIZE = 1500.0  # bytes; granularity for loss-probability conversion


class Proto(enum.Enum):
    """Wire transports the simulator understands."""

    TCP = "tcp"
    UDP = "udp"
    UDT = "udt"  # runs over UDP and is therefore subject to UDP policing
    LEDBAT = "ledbat"  # scavenger background transport (RFC 6817), over UDP


@dataclass(frozen=True)
class LinkSpec:
    """One direction's characteristics.

    ``bandwidth``      bytes/second capacity.
    ``delay``          one-way propagation delay in seconds.
    ``loss``           per-packet (1500 B) random loss probability.
    ``udp_cap``        bytes/second policing cap shared by all UDP-based
                       traffic (models EC2's ~10 MB/s UDP rate limiting);
                       ``None`` disables policing.
    ``jitter``         max extra uniform delay applied to UDP datagrams.
    """

    bandwidth: float
    delay: float
    loss: float = 0.0
    udp_cap: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if self.udp_cap is not None and self.udp_cap <= 0:
            raise ValueError("udp_cap must be positive or None")

    @property
    def rtt(self) -> float:
        return 2.0 * self.delay


def max_min_allocation(demands: Sequence[float], capacity: float) -> List[float]:
    """Progressive-filling max-min fair allocation.

    Flows demanding less than their fair share keep their demand; the
    leftover is redistributed among the rest.  ``inf`` demands are
    satisfied last and share the remainder equally.
    """
    n = len(demands)
    if n == 0:
        return []
    if n == 1:
        # Degenerate progressive filling: share = capacity / 1.
        return [min(demands[0], capacity / 1)]
    if n == 2:
        # Two flows, unrolled.  sorted() is stable, so on a demand tie the
        # lower index settles first — mirrored by the <= below.
        d0, d1 = demands
        if d0 <= d1:
            a0 = min(d0, capacity / 2)
            a1 = min(d1, capacity - a0)
        else:
            a1 = min(d1, capacity / 2)
            a0 = min(d0, capacity - a1)
        return [a0, a1]
    alloc = [0.0] * n
    remaining = capacity
    # Sort indices by demand so that under-demanders are settled first.
    order = sorted(range(n), key=lambda i: demands[i])
    active = n
    for idx in order:
        share = remaining / active
        give = min(demands[idx], share)
        alloc[idx] = give
        remaining -= give
        active -= 1
    return alloc


class LinkDirection:
    """One direction of a link; tracks active flows for fair sharing."""

    def __init__(self, spec: LinkSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.up = True
        self._active: List["FlowState"] = []
        self.bytes_carried = 0.0

        # Per-direction wire accounting (no-ops unless a registry is enabled).
        metrics = get_registry()
        self._obs = metrics.enabled
        self._m_bytes = metrics.counter("netsim.link.bytes_total", link=name)
        self._m_messages = metrics.counter("netsim.link.messages_total", link=name)
        self._m_drops = metrics.counter("netsim.link.drops_total", link=name)
        if metrics.enabled:
            metrics.gauge("netsim.link.active_flows", link=name).set_function(
                lambda: len(self._active)
            )
        checker = get_checker()
        self._check = checker.link_hook(name) if checker.enabled else None

    # ------------------------------------------------------------------
    # wire accounting (called by FlowState on the transmit path)
    # ------------------------------------------------------------------
    def note_transmit(self, nbytes: int) -> None:
        """Account one message put on the wire in this direction."""
        self.bytes_carried += nbytes
        if self._obs:
            self._m_bytes.inc(nbytes)
            self._m_messages.inc()

    def note_drop(self) -> None:
        """Account one message lost in this direction (loss, cut, abort)."""
        self._m_drops.inc()

    def update_spec(self, spec: LinkSpec) -> None:
        """Change the direction's characteristics at runtime.

        Models changing network conditions (congestion elsewhere, route
        changes, degradation) — the scenario the paper's adaptive selection
        exists for.  Existing connections keep flowing; their congestion
        state reacts to the new loss/bandwidth on the next transmissions.
        NOTE: per-connection RTT estimates are refreshed by
        ``SimNetwork.refresh_rtts`` (connections cache the RTT at dial time).
        """
        self.spec = spec

    # ------------------------------------------------------------------
    # flow registration
    # ------------------------------------------------------------------
    def activate(self, flow: "FlowState") -> None:
        if flow not in self._active:
            self._active.append(flow)

    def deactivate(self, flow: "FlowState") -> None:
        if flow in self._active:
            self._active.remove(flow)

    @property
    def active_flows(self) -> Tuple["FlowState", ...]:
        return tuple(self._active)

    # ------------------------------------------------------------------
    # rate allocation
    # ------------------------------------------------------------------
    def allocate_rate(self, flow: "FlowState") -> float:
        """This flow's current max-min share, given every active demand.

        Three concerns compose:

        * UDP-based flows (UDP, UDT, LEDBAT) first share the policing pool
          ``udp_cap`` among themselves (EC2's rate limiting);
        * *scavenger* flows (LEDBAT) only receive bandwidth left over after
          every foreground flow's demand is satisfied — the less-than-best-
          effort semantics of RFC 6817;
        * within each tier, progressive-filling max-min fairness.
        """
        active = self._active
        if self._check is not None:
            # Checked runs always take the general path: it computes the
            # full demand/allocation maps the feasibility invariant needs,
            # and it makes the same demand_rate() calls in the same order
            # as the unrolled cases (controllers mutate state when queried,
            # so the hook must not re-query them).
            return self._allocate_general(flow)
        if len(active) == 1 and active[0] is flow:
            # Sole active flow (the bulk-transfer steady state): the tiers
            # collapse to min(demand, caps), bit-identical to the general
            # path below (max-min of one demand is min(demand, capacity)).
            demand = flow.demand_rate()
            if flow.subject_to_udp_cap and self.spec.udp_cap is not None:
                demand = min(demand, self.spec.udp_cap)
            return max(min(demand, self.spec.bandwidth), 1.0)
        if (
            len(active) == 2
            and not active[0].scavenger
            and not active[1].scavenger
            and (flow is active[0] or flow is active[1])
        ):
            # Two foreground flows (adaptive DATA's TCP + UDT mix): the
            # general path below reduces to capping the UDP-pool members,
            # then one two-flow max-min — same operations, same order, no
            # dict/list churn.
            f0, f1 = active
            d0 = f0.demand_rate()
            d1 = f1.demand_rate()
            cap = self.spec.udp_cap
            if cap is not None:
                if f0.subject_to_udp_cap:
                    if f1.subject_to_udp_cap:
                        if d0 <= d1:
                            d0 = min(d0, cap / 2)
                            d1 = min(d1, cap - d0)
                        else:
                            d1 = min(d1, cap / 2)
                            d0 = min(d0, cap - d1)
                    else:
                        d0 = min(d0, cap / 1)
                elif f1.subject_to_udp_cap:
                    d1 = min(d1, cap / 1)
            bw = self.spec.bandwidth
            if d0 <= d1:
                a0 = min(d0, bw / 2)
                a1 = min(d1, bw - a0)
            else:
                a1 = min(d1, bw / 2)
                a0 = min(d0, bw - a1)
            return max(a0 if flow is f0 else a1, 1.0)
        return self._allocate_general(flow)

    def _allocate_general(self, flow: "FlowState") -> float:
        active = self._active
        flows = active if flow in active else active + [flow]
        demands: Dict["FlowState", float] = {f: f.demand_rate() for f in flows}

        if self.spec.udp_cap is not None:
            udp_flows = [f for f in flows if f.subject_to_udp_cap]
            if udp_flows:
                capped = max_min_allocation([demands[f] for f in udp_flows], self.spec.udp_cap)
                for f, c in zip(udp_flows, capped):
                    demands[f] = c

        foreground = [f for f in flows if not f.scavenger]
        background = [f for f in flows if f.scavenger]
        fg_alloc = max_min_allocation([demands[f] for f in foreground], self.spec.bandwidth)
        allocation: Dict["FlowState", float] = dict(zip(foreground, fg_alloc))
        if background:
            leftover = max(self.spec.bandwidth - sum(fg_alloc), 0.0)
            bg_alloc = max_min_allocation([demands[f] for f in background], leftover)
            allocation.update(zip(background, bg_alloc))

        if self._check is not None:
            self._check.on_allocation(
                demands, allocation, self.spec.bandwidth,
                {f: f.scavenger for f in flows},
            )

        # Never return a zero rate for a flow with work: progress floor.
        return max(allocation[flow], 1.0)

    # ------------------------------------------------------------------
    # loss
    # ------------------------------------------------------------------
    def loss_probability(self, nbytes: int) -> float:
        """Probability that a transmission of ``nbytes`` sees >= 1 packet loss."""
        if self.spec.loss <= 0.0:
            return 0.0
        packets = max(1.0, nbytes / PACKET_SIZE)
        return 1.0 - math.pow(1.0 - self.spec.loss, packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkDirection({self.name}, bw={self.spec.bandwidth:.3g}B/s, d={self.spec.delay * 1e3:.3g}ms)"


class Link:
    """A duplex link between two hosts (or a host's loopback)."""

    def __init__(self, a: str, b: str, spec_ab: LinkSpec, spec_ba: Optional[LinkSpec] = None) -> None:
        self.a = a
        self.b = b
        self.forward = LinkDirection(spec_ab, f"{a}->{b}")
        self.backward = LinkDirection(spec_ba or spec_ab, f"{b}->{a}")

    def direction(self, src: str, dst: str) -> LinkDirection:
        if (src, dst) == (self.a, self.b):
            return self.forward
        if (src, dst) == (self.b, self.a):
            return self.backward
        raise KeyError(f"link {self.a}<->{self.b} does not join {src}->{dst}")

    @property
    def up(self) -> bool:
        return self.forward.up and self.backward.up

    def set_up(self, up: bool) -> None:
        self.forward.up = up
        self.backward.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a} <-> {self.b})"
