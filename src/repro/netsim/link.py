"""Links: bandwidth, delay, loss, UDP policing and max-min fair sharing."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import fastpath
from repro.check import get_checker
from repro.obs import get_registry

try:  # numpy backs the vectorized max-min solver; scalar path otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the dev environment
    _np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.connection import FlowState

PACKET_SIZE = 1500.0  # bytes; granularity for loss-probability conversion

#: Hand the max-min solve to numpy only above this flow count; below it the
#: scalar path wins on constant factors.
VEC_MAXMIN_THRESHOLD = 32


class Proto(enum.Enum):
    """Wire transports the simulator understands."""

    TCP = "tcp"
    UDP = "udp"
    UDT = "udt"  # runs over UDP and is therefore subject to UDP policing
    LEDBAT = "ledbat"  # scavenger background transport (RFC 6817), over UDP


@dataclass(frozen=True)
class LinkSpec:
    """One direction's characteristics.

    ``bandwidth``      bytes/second capacity.
    ``delay``          one-way propagation delay in seconds.
    ``loss``           per-packet (1500 B) random loss probability.
    ``udp_cap``        bytes/second policing cap shared by all UDP-based
                       traffic (models EC2's ~10 MB/s UDP rate limiting);
                       ``None`` disables policing.
    ``jitter``         max extra uniform delay applied to UDP datagrams.
    """

    bandwidth: float
    delay: float
    loss: float = 0.0
    udp_cap: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if self.udp_cap is not None and self.udp_cap <= 0:
            raise ValueError("udp_cap must be positive or None")

    @property
    def rtt(self) -> float:
        return 2.0 * self.delay


def max_min_allocation(demands: Sequence[float], capacity: float) -> List[float]:
    """Progressive-filling max-min fair allocation.

    Flows demanding less than their fair share keep their demand; the
    leftover is redistributed among the rest.  ``inf`` demands are
    satisfied last and share the remainder equally.
    """
    n = len(demands)
    if n == 0:
        return []
    if n == 1:
        # Degenerate progressive filling: share = capacity / 1.
        return [min(demands[0], capacity / 1)]
    if n == 2:
        # Two flows, unrolled.  sorted() is stable, so on a demand tie the
        # lower index settles first — mirrored by the <= below.
        d0, d1 = demands
        if d0 <= d1:
            a0 = min(d0, capacity / 2)
            a1 = min(d1, capacity - a0)
        else:
            a1 = min(d1, capacity / 2)
            a0 = min(d0, capacity - a1)
        return [a0, a1]
    alloc = [0.0] * n
    remaining = capacity
    # Sort indices by demand so that under-demanders are settled first.
    order = sorted(range(n), key=lambda i: demands[i])
    active = n
    for idx in order:
        share = remaining / active
        give = min(demands[idx], share)
        alloc[idx] = give
        remaining -= give
        active -= 1
    return alloc


def max_min_allocation_vec(demands: Sequence[float], capacity: float) -> List[float]:
    """Vectorized progressive filling, bit-equal to :func:`max_min_allocation`.

    The scalar reference settles flows in ascending-demand order and while
    a flow demands less than its fair share the step degenerates to
    ``remaining -= demand``.  That prefix is a pure left fold, which
    ``np.subtract.accumulate`` reproduces with the *same* sequence of IEEE
    subtractions — so the prefix allocations and the running ``remaining``
    match the scalar path bit for bit.  The first flow whose demand
    exceeds its share breaks the degenerate pattern; from there the scalar
    loop finishes the (typically short) saturated tail, which also absorbs
    ``inf`` demands and any share wobble.  ``argsort(kind="stable")``
    matches ``sorted``'s stable tie-breaking exactly.
    """
    n = len(demands)
    if n <= 2 or _np is None:
        return max_min_allocation(demands, capacity)
    arr = _np.asarray(demands, dtype=float)
    order = _np.argsort(arr, kind="stable")
    d_sorted = arr[order]
    # remaining[k] = capacity after fully granting the first k demands,
    # computed as the same left fold the scalar loop performs.
    remaining_seq = _np.subtract.accumulate(
        _np.concatenate(((capacity,), d_sorted[:-1]))
    )
    shares = remaining_seq / _np.arange(n, 0, -1, dtype=float)
    under = d_sorted <= shares
    k = n if bool(under.all()) else int(_np.argmin(under))
    alloc = [0.0] * n
    order_list = order.tolist()
    d_list = d_sorted.tolist()
    for i in range(k):
        alloc[order_list[i]] = d_list[i]
    if k < n:
        remaining = float(remaining_seq[k])
        active = n - k
        for i in range(k, n):
            share = remaining / active
            give = min(d_list[i], share)
            alloc[order_list[i]] = give
            remaining -= give
            active -= 1
    return alloc


def _max_min(demands: Sequence[float], capacity: float) -> List[float]:
    """Dispatch between the scalar and vectorized max-min solvers."""
    if (
        fastpath.VEC_MAXMIN
        and _np is not None
        and len(demands) >= VEC_MAXMIN_THRESHOLD
    ):
        return max_min_allocation_vec(demands, capacity)
    return max_min_allocation(demands, capacity)


class LinkDirection:
    """One direction of a link; tracks active flows for fair sharing.

    Allocation epochs (``fastpath.ALLOC_EPOCH``)
    --------------------------------------------
    The tiered allocation (udp-cap pool → foreground max-min → scavenger
    leftover) is a pure function of the active-flow set, the link spec,
    the controllers' demand-relevant state, and — for time-varying
    controllers like UDT — the clock.  Those inputs change far less often
    than messages start, so the direction counts an *allocation epoch*
    (``_epoch``), bumped on activate/deactivate, spec change, and
    ``demand_dirty`` (a controller's demand-relevant state changed), and
    caches the full allocation map per epoch.  A cache hit skips the
    demand queries entirely; that is byte-equivalent because
    ``demand_rate`` is idempotent within a timestamp (see
    :class:`~repro.netsim.congestion.CongestionControl`) and a hit implies
    unchanged state (same epoch) and — when any participant is
    time-varying — the same timestamp.
    """

    def __init__(self, spec: LinkSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.up = True
        #: insertion-ordered set of active flows (dict for O(1) membership;
        #: iteration order matches the old append/remove list semantics)
        self._active: Dict["FlowState", None] = {}
        #: memoized tuple view of ``_active`` (rebuilt lazily on change)
        self._flows: Optional[Tuple["FlowState", ...]] = None
        #: allocation epoch; any change to allocation inputs bumps it
        self._epoch = 0
        #: (epoch, timestamp-or-None, {flow: floored rate}) — timestamp is
        #: None when every participant's demand is time-invariant
        self._alloc_cache: Optional[
            Tuple[int, Optional[float], Dict["FlowState", float]]
        ] = None
        #: (spec, nbytes, probability) — see loss_probability
        self._loss_memo: Optional[Tuple[LinkSpec, int, float]] = None
        self.bytes_carried = 0.0

        # Per-direction wire accounting (no-ops unless a registry is enabled).
        metrics = get_registry()
        self._obs = metrics.enabled
        self._m_bytes = metrics.counter("netsim.link.bytes_total", link=name)
        self._m_messages = metrics.counter("netsim.link.messages_total", link=name)
        self._m_drops = metrics.counter("netsim.link.drops_total", link=name)
        if metrics.enabled:
            metrics.gauge("netsim.link.active_flows", link=name).set_function(
                lambda: len(self._active)
            )
        checker = get_checker()
        self._check = checker.link_hook(name) if checker.enabled else None

    # ------------------------------------------------------------------
    # wire accounting (called by FlowState on the transmit path)
    # ------------------------------------------------------------------
    def note_transmit(self, nbytes: int) -> None:
        """Account one message put on the wire in this direction."""
        self.bytes_carried += nbytes
        if self._obs:
            self._m_bytes.inc(nbytes)
            self._m_messages.inc()

    def note_drop(self) -> None:
        """Account one message lost in this direction (loss, cut, abort)."""
        if self._obs:
            self._m_drops.inc()

    def update_spec(self, spec: LinkSpec) -> None:
        """Change the direction's characteristics at runtime.

        Models changing network conditions (congestion elsewhere, route
        changes, degradation) — the scenario the paper's adaptive selection
        exists for.  Existing connections keep flowing; their congestion
        state reacts to the new loss/bandwidth on the next transmissions.
        NOTE: per-connection RTT estimates are refreshed by
        ``SimNetwork.refresh_rtts`` (connections cache the RTT at dial time).
        """
        self.spec = spec
        self._epoch += 1

    # ------------------------------------------------------------------
    # flow registration
    # ------------------------------------------------------------------
    def activate(self, flow: "FlowState") -> None:
        active = self._active
        if flow not in active:
            active[flow] = None
            self._flows = None
            self._epoch += 1

    def deactivate(self, flow: "FlowState") -> None:
        active = self._active
        if flow in active:
            del active[flow]
            self._flows = None
            self._epoch += 1

    def demand_dirty(self) -> None:
        """Invalidate the allocation epoch: a controller's demand changed.

        Called by :class:`~repro.netsim.connection.FlowState` when a
        completion's congestion signals moved the controller's
        ``demand_gen``, and by ``SimNetwork.refresh_rtts`` after writing
        RTTs into live controllers.
        """
        self._epoch += 1

    def _flows_tuple(self) -> Tuple["FlowState", ...]:
        flows = self._flows
        if flows is None:
            flows = self._flows = tuple(self._active)
        return flows

    @property
    def active_flows(self) -> Tuple["FlowState", ...]:
        return self._flows_tuple()

    # ------------------------------------------------------------------
    # rate allocation
    # ------------------------------------------------------------------
    def allocate_rate(self, flow: "FlowState") -> float:
        """This flow's current max-min share, given every active demand.

        Three concerns compose:

        * UDP-based flows (UDP, UDT, LEDBAT) first share the policing pool
          ``udp_cap`` among themselves (EC2's rate limiting);
        * *scavenger* flows (LEDBAT) only receive bandwidth left over after
          every foreground flow's demand is satisfied — the less-than-best-
          effort semantics of RFC 6817;
        * within each tier, progressive-filling max-min fairness.
        """
        if self._check is not None:
            # Checked runs always take the general path: it computes the
            # full demand/allocation maps the feasibility invariant needs,
            # and it makes the same demand_rate() calls in the same order
            # as the unrolled cases (controllers mutate state when queried,
            # so the hook must not re-query them).
            return self._allocate_general(flow)
        active = self._flows_tuple()
        if fastpath.ALLOC_EPOCH:
            if len(active) == 1 and active[0] is flow:
                # Sole-flow queries gain nothing from the cache (the whole
                # solve is four lines) but would pay its dict/tuple churn,
                # so they keep the direct unrolled path.
                spec = self.spec
                demand = flow.demand_rate()
                if flow.subject_to_udp_cap and spec.udp_cap is not None:
                    cap = spec.udp_cap
                    if demand > cap:
                        demand = cap
                bw = spec.bandwidth
                if demand > bw:
                    demand = bw
                return demand if demand > 1.0 else 1.0
            cache = self._alloc_cache
            if cache is not None and cache[0] == self._epoch:
                stamp = cache[1]
                if stamp is None or stamp == flow.sim.clock._now:
                    rate = cache[2].get(flow)
                    if rate is not None:
                        return rate
            return self._allocate_epoch(flow)
        if len(active) == 1 and active[0] is flow:
            # Sole active flow (the bulk-transfer steady state): the tiers
            # collapse to min(demand, caps), bit-identical to the general
            # path below (max-min of one demand is min(demand, capacity)).
            demand = flow.demand_rate()
            if flow.subject_to_udp_cap and self.spec.udp_cap is not None:
                cap = self.spec.udp_cap
                if demand > cap:
                    demand = cap
            bw = self.spec.bandwidth
            if demand > bw:
                demand = bw
            return demand if demand > 1.0 else 1.0
        if (
            len(active) == 2
            and not active[0].scavenger
            and not active[1].scavenger
            and (flow is active[0] or flow is active[1])
        ):
            # Two foreground flows (adaptive DATA's TCP + UDT mix): the
            # general path below reduces to capping the UDP-pool members,
            # then one two-flow max-min — same operations, same order, no
            # dict/list churn.
            f0, f1 = active
            d0 = f0.demand_rate()
            d1 = f1.demand_rate()
            cap = self.spec.udp_cap
            if cap is not None:
                if f0.subject_to_udp_cap:
                    if f1.subject_to_udp_cap:
                        if d0 <= d1:
                            half = cap / 2
                            if d0 > half:
                                d0 = half
                            rest = cap - d0
                            if d1 > rest:
                                d1 = rest
                        else:
                            half = cap / 2
                            if d1 > half:
                                d1 = half
                            rest = cap - d1
                            if d0 > rest:
                                d0 = rest
                    else:
                        full = cap / 1
                        if d0 > full:
                            d0 = full
                elif f1.subject_to_udp_cap:
                    full = cap / 1
                    if d1 > full:
                        d1 = full
            bw = self.spec.bandwidth
            if d0 <= d1:
                half = bw / 2
                a0 = d0 if d0 <= half else half
                rest = bw - a0
                a1 = d1 if d1 <= rest else rest
            else:
                half = bw / 2
                a1 = d1 if d1 <= half else half
                rest = bw - a1
                a0 = d0 if d0 <= rest else rest
            alloc = a0 if flow is f0 else a1
            return alloc if alloc > 1.0 else 1.0
        return self._allocate_general(flow)

    def _query_flows(self, flow: "FlowState") -> Tuple["FlowState", ...]:
        """The flow set an allocation covers, in activation order."""
        flows = self._flows_tuple()
        if flow not in self._active:
            flows = flows + (flow,)
        return flows

    def _tiered_allocation(
        self,
        flows: Sequence["FlowState"],
        demands: Dict["FlowState", float],
    ) -> Dict["FlowState", float]:
        """udp-cap pool → foreground max-min → scavenger leftover.

        Mutates ``demands`` in place (udp-capped values), matching what the
        checker hook historically observed.
        """
        spec = self.spec
        if spec.udp_cap is not None:
            udp_flows = [f for f in flows if f.subject_to_udp_cap]
            if udp_flows:
                capped = _max_min([demands[f] for f in udp_flows], spec.udp_cap)
                for f, c in zip(udp_flows, capped):
                    demands[f] = c

        foreground = [f for f in flows if not f.scavenger]
        background = [f for f in flows if f.scavenger]
        fg_alloc = _max_min([demands[f] for f in foreground], spec.bandwidth)
        allocation: Dict["FlowState", float] = dict(zip(foreground, fg_alloc))
        if background:
            leftover = max(spec.bandwidth - sum(fg_alloc), 0.0)
            bg_alloc = _max_min([demands[f] for f in background], leftover)
            allocation.update(zip(background, bg_alloc))
        return allocation

    def _allocate_general(self, flow: "FlowState") -> float:
        flows = self._query_flows(flow)
        demands: Dict["FlowState", float] = {f: f.demand_rate() for f in flows}
        allocation = self._tiered_allocation(flows, demands)

        if self._check is not None:
            self._check.on_allocation(
                demands, allocation, self.spec.bandwidth,
                {f: f.scavenger for f in flows},
            )

        # Never return a zero rate for a flow with work: progress floor.
        return max(allocation[flow], 1.0)

    def _allocate_epoch(self, flow: "FlowState") -> float:
        """Compute and cache the full allocation map for this epoch.

        Performs exactly the demand queries (count and order) the
        reference path would make for one allocation, then records every
        flow's floored rate so subsequent queries in the same epoch skip
        the solve entirely.  The cache is stamped with the current time
        when any participant's demand is time-varying; it is reusable
        across timestamps otherwise.
        """
        flows = self._query_flows(flow)
        epoch = self._epoch  # before queries: a query must not outlive bumps
        now = flow.sim.clock._now
        spec = self.spec
        n = len(flows)
        time_varying = False
        rates: Dict["FlowState", float]
        if n == 1:
            f0 = flows[0]
            time_varying = f0.cc.demand_time_varying
            demand = f0.demand_rate()
            if f0.subject_to_udp_cap and spec.udp_cap is not None:
                demand = min(demand, spec.udp_cap)
            bw = spec.bandwidth
            if demand > bw:
                demand = bw
            rates = {f0: demand if demand > 1.0 else 1.0}
        elif n == 2 and not flows[0].scavenger and not flows[1].scavenger:
            # Two foreground flows, unrolled: cap the UDP-pool members,
            # then one two-flow max-min — same operations in the same
            # order as the general path.
            f0, f1 = flows
            time_varying = f0.cc.demand_time_varying or f1.cc.demand_time_varying
            d0 = f0.demand_rate()
            d1 = f1.demand_rate()
            cap = spec.udp_cap
            if cap is not None:
                if f0.subject_to_udp_cap:
                    if f1.subject_to_udp_cap:
                        if d0 <= d1:
                            half = cap / 2
                            if d0 > half:
                                d0 = half
                            rest = cap - d0
                            if d1 > rest:
                                d1 = rest
                        else:
                            half = cap / 2
                            if d1 > half:
                                d1 = half
                            rest = cap - d1
                            if d0 > rest:
                                d0 = rest
                    else:
                        full = cap / 1
                        if d0 > full:
                            d0 = full
                elif f1.subject_to_udp_cap:
                    full = cap / 1
                    if d1 > full:
                        d1 = full
            bw = spec.bandwidth
            if d0 <= d1:
                half = bw / 2
                a0 = d0 if d0 <= half else half
                rest = bw - a0
                a1 = d1 if d1 <= rest else rest
            else:
                half = bw / 2
                a1 = d1 if d1 <= half else half
                rest = bw - a1
                a0 = d0 if d0 <= rest else rest
            if a0 < 1.0:
                a0 = 1.0
            if a1 < 1.0:
                a1 = 1.0
            rates = {f0: a0, f1: a1}
        else:
            demands: Dict["FlowState", float] = {f: f.demand_rate() for f in flows}
            allocation = self._tiered_allocation(flows, demands)
            rates = {f: max(a, 1.0) for f, a in allocation.items()}
            for f in flows:
                if f.cc.demand_time_varying:
                    time_varying = True
                    break
        self._alloc_cache = (epoch, now if time_varying else None, rates)
        return rates[flow]

    # ------------------------------------------------------------------
    # loss
    # ------------------------------------------------------------------
    def loss_probability(self, nbytes: int) -> float:
        """Probability that a transmission of ``nbytes`` sees >= 1 packet loss."""
        # Single-entry memo: bulk transfers ask for the same chunk size
        # against the same (frozen) spec millions of times, and math.pow
        # dominates an otherwise trivial function.
        spec = self.spec
        memo = self._loss_memo
        if memo is not None and memo[0] is spec and memo[1] == nbytes:
            return memo[2]
        if spec.loss <= 0.0:
            p = 0.0
        else:
            packets = nbytes / PACKET_SIZE
            if packets < 1.0:
                packets = 1.0
            p = 1.0 - math.pow(1.0 - spec.loss, packets)
        self._loss_memo = (spec, nbytes, p)
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkDirection({self.name}, bw={self.spec.bandwidth:.3g}B/s, d={self.spec.delay * 1e3:.3g}ms)"


class Link:
    """A duplex link between two hosts (or a host's loopback)."""

    def __init__(self, a: str, b: str, spec_ab: LinkSpec, spec_ba: Optional[LinkSpec] = None) -> None:
        self.a = a
        self.b = b
        self.forward = LinkDirection(spec_ab, f"{a}->{b}")
        self.backward = LinkDirection(spec_ba or spec_ab, f"{b}->{a}")

    def direction(self, src: str, dst: str) -> LinkDirection:
        if (src, dst) == (self.a, self.b):
            return self.forward
        if (src, dst) == (self.b, self.a):
            return self.backward
        raise KeyError(f"link {self.a}<->{self.b} does not join {src}->{dst}")

    @property
    def up(self) -> bool:
        return self.forward.up and self.backward.up

    def set_up(self, up: bool) -> None:
        self.forward.up = up
        self.backward.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a} <-> {self.b})"
