"""A simple throughput-model disk.

The paper's local (0 ms) scenario is explicitly disk-bound: "In the local
scenario, in fact, TCP and DATA are limited by disk performance" (§V-B).
Reads and writes are serialized FIFO per direction at a fixed rate,
matching an SSD's sequential behaviour at the 65 kB chunk sizes used.
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Simulator

DEFAULT_RATE = 120 * 1024 * 1024  # ~120 MB/s sequential, a c3.2xlarge-era SSD


class DiskModel:
    """FIFO-serialized sequential reads and writes at fixed rates."""

    def __init__(
        self,
        sim: Simulator,
        read_rate: float = DEFAULT_RATE,
        write_rate: float = DEFAULT_RATE,
    ) -> None:
        if read_rate <= 0 or write_rate <= 0:
            raise ValueError("disk rates must be positive")
        self.sim = sim
        self.read_rate = read_rate
        self.write_rate = write_rate
        self._read_busy_until = 0.0
        self._write_busy_until = 0.0
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, nbytes: int, callback: Callable[[], None]) -> float:
        """Schedule a sequential read; returns its completion time."""
        if nbytes < 0:
            raise ValueError("cannot read a negative byte count")
        sim = self.sim
        now = sim.clock._now
        busy = self._read_busy_until
        start = busy if busy > now else now
        done = start + nbytes / self.read_rate
        self._read_busy_until = done
        self.bytes_read += nbytes
        sim.schedule_at(done, callback, label="disk-read")
        return done

    def write(self, nbytes: int, callback: Callable[[], None]) -> float:
        """Schedule a sequential write; returns its completion time."""
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        sim = self.sim
        now = sim.clock._now
        busy = self._write_busy_until
        start = busy if busy > now else now
        done = start + nbytes / self.write_rate
        self._write_busy_until = done
        self.bytes_written += nbytes
        sim.schedule_at(done, callback, label="disk-write")
        return done
