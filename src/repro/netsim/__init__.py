"""Deterministic network simulation substrate.

Replaces the paper's EC2 testbed + Netty + kernel transports with a
discrete-event, fluid-flow model:

* :class:`SimNetwork` — the fabric: hosts, point-to-point links, loopback.
* :class:`Link` — duplex; each direction has bandwidth, propagation delay,
  random loss, and (to model EC2's policing) a separate UDP capacity pool.
  Concurrent flows share a direction by progressive-filling max-min.
* Connections carry middleware messages as *fluid* transmissions: a message
  occupies its flow for ``size / rate`` seconds, where the rate comes from
  the transport's congestion-control state and the link share; completed
  messages arrive after the propagation delay.  TCP (slow start + AIMD,
  window-capped) and UDT (DAIMD rate-based, RTT-insensitive) are reliable
  and FIFO; UDP is lossy and unordered.

The fluid quantum is one middleware message (65 kB in the paper's
experiments), which keeps event counts ~1000x below packet-level simulation
while preserving the aggregate quantities the paper measures: throughput
ramps, bandwidth-delay limits and head-of-line queueing delay.
"""

from repro.netsim.congestion import (
    CC_POLICIES,
    BbrCc,
    CcContext,
    CcPolicy,
    CcRegistry,
    CongestionControl,
    CubicCc,
    DuplicateCcError,
    LedbatCc,
    TcpCc,
    UdpCc,
    UdtCc,
    UnknownCcError,
    cc_names,
    make_cc,
    register_cc,
)
from repro.netsim.connection import Connection, ConnectionState, WireMessage
from repro.netsim.disk import DiskModel
from repro.netsim.fabric import SimNetwork
from repro.netsim.faults import FaultInjector
from repro.netsim.host import Listener, NetworkStack, SimHost
from repro.netsim.link import Link, LinkDirection, LinkSpec, Proto, max_min_allocation
from repro.netsim.routing import CompositePath

__all__ = [
    "SimNetwork",
    "SimHost",
    "NetworkStack",
    "Listener",
    "Link",
    "LinkDirection",
    "LinkSpec",
    "Proto",
    "max_min_allocation",
    "CompositePath",
    "Connection",
    "ConnectionState",
    "WireMessage",
    "CongestionControl",
    "TcpCc",
    "UdtCc",
    "UdpCc",
    "LedbatCc",
    "CubicCc",
    "BbrCc",
    "CC_POLICIES",
    "CcRegistry",
    "CcPolicy",
    "CcContext",
    "UnknownCcError",
    "DuplicateCcError",
    "register_cc",
    "cc_names",
    "make_cc",
    "DiskModel",
    "FaultInjector",
]
