"""Fault injection: link cuts and connection drops.

Used to verify the middleware's at-most-once semantics: "Even over TCP and
UDT a sudden channel drop may lead to the loss of messages" (§III-B).
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.connection import Connection, ConnectionState
from repro.netsim.fabric import SimNetwork
from repro.netsim.link import Link
from repro.obs import get_registry, get_tracer


class FaultInjector:
    """Imperative fault control over a :class:`SimNetwork`."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        metrics = get_registry()
        self.tracer = get_tracer()
        self._m_cuts = metrics.counter("netsim.faults.link_cuts_total")
        self._m_restores = metrics.counter("netsim.faults.link_restores_total")
        self._m_degrades = metrics.counter("netsim.faults.link_degrades_total")
        self._m_conn_drops = metrics.counter("netsim.faults.connection_drops_total")

    # ------------------------------------------------------------------
    # scripting
    # ------------------------------------------------------------------
    def at(self, time: float, action, label: str = "fault-script"):
        """Schedule a scripted fault action at absolute sim time ``time``.

        Convenience for campaign timelines::

            faults.at(5.0, lambda: faults.cut_link("10.0.0.1", "10.0.0.2",
                                                   duration=2.0))
        """
        return self.network.sim.schedule_at(time, action, label=label)

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def cut_link(self, ip_a: str, ip_b: str, duration: Optional[float] = None) -> Link:
        """Take the link down, aborting every connection traversing it.

        With ``duration`` the link restores automatically; connections do
        not — the middleware must re-establish channels on demand.
        """
        link = self.network.link_between(ip_a, ip_b)
        link.set_up(False)
        self._m_cuts.inc()
        self.tracer.event("netsim.fault.link_cut", a=ip_a, b=ip_b, duration=duration)
        for conn in self._connections_over(ip_a, ip_b):
            conn.close(notify_peer=False)
        if duration is not None:
            def auto_restore() -> None:
                link.set_up(True)
                self._m_restores.inc()
                self.tracer.event(
                    "netsim.fault.link_restore", a=ip_a, b=ip_b, auto=True
                )

            self.network.sim.schedule(duration, auto_restore, label="link-restore")
        return link

    def restore_link(self, ip_a: str, ip_b: str) -> Link:
        link = self.network.link_between(ip_a, ip_b)
        link.set_up(True)
        self._m_restores.inc()
        self.tracer.event("netsim.fault.link_restore", a=ip_a, b=ip_b)
        return link

    def degrade_link(
        self,
        ip_a: str,
        ip_b: str,
        spec,
        spec_reverse=None,
        duration: Optional[float] = None,
    ) -> Link:
        """Change a link's characteristics without dropping connections.

        Models changing network conditions — extra cross-traffic, a route
        flap onto a longer path, a lossy period — which is exactly the
        environment drift the paper's adaptive transport selection reacts
        to.  Existing connections keep running; their congestion
        controllers see the new loss/bandwidth immediately and their RTT
        estimates are refreshed to the new propagation delays.

        With ``duration`` the link auto-restores to the specs it had at
        the moment of the call (mirroring :meth:`cut_link`), counted as a
        restore.
        """
        link = self.network.link_between(ip_a, ip_b)
        original_forward, original_backward = link.forward.spec, link.backward.spec
        link.forward.update_spec(spec)
        link.backward.update_spec(spec_reverse if spec_reverse is not None else spec)
        self._m_degrades.inc()
        self.tracer.event(
            "netsim.fault.link_degrade", a=ip_a, b=ip_b,
            bandwidth=spec.bandwidth, delay=spec.delay, loss=spec.loss,
        )
        self.network.refresh_rtts()
        if duration is not None:
            def auto_restore() -> None:
                link.forward.update_spec(original_forward)
                link.backward.update_spec(original_backward)
                self._m_restores.inc()
                self.tracer.event(
                    "netsim.fault.link_degrade_restore", a=ip_a, b=ip_b, auto=True
                )
                self.network.refresh_rtts()

            self.network.sim.schedule(duration, auto_restore, label="degrade-restore")
        return link

    # ------------------------------------------------------------------
    # connection faults
    # ------------------------------------------------------------------
    def drop_connection(self, conn: Connection) -> None:
        """Abort one connection (both sides, instantly)."""
        peer = conn.peer
        self._m_conn_drops.inc()
        self.tracer.event(
            "netsim.fault.connection_drop", conn=conn.id, proto=conn.proto.value
        )
        conn.close(notify_peer=False)
        if peer is not None:
            peer.close(notify_peer=False)

    def _connections_over(self, ip_a: str, ip_b: str) -> List[Connection]:
        """Live connections whose route traverses the (ip_a, ip_b) link —
        including multi-hop routed connections between other endpoints."""
        from repro.netsim.routing import single_hop_directions

        link = self.network.link_between(ip_a, ip_b)
        cut = {link.forward, link.backward}
        found: List[Connection] = []
        for host in self.network.hosts.values():
            for conn in host.stack.connections:
                if conn.state not in (ConnectionState.ACTIVE, ConnectionState.CONNECTING):
                    continue
                hops = set(single_hop_directions(conn.flow.link_dir))
                if hops & cut:
                    found.append(conn)
        return found
