"""Event tracing for the simulated network.

A :class:`NetworkTracer` hooks a :class:`~repro.netsim.fabric.SimNetwork`
and records per-connection wire events (transmissions, deliveries, drops,
rate samples) as structured records — the simulator's analogue of a pcap,
useful for debugging models and for assertion-rich tests.

Tracing monkey-wraps ``FlowState._complete`` and ``Connection._receive``
on *new* connections, so attach the tracer before the traffic starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.netsim.connection import Connection
from repro.netsim.fabric import SimNetwork
from repro.netsim.host import NetworkStack
from repro.obs import get_registry


@dataclass(frozen=True)
class TraceRecord:
    """One wire event."""

    time: float
    kind: str  # "tx" | "rx" | "drop"
    conn_id: int
    proto: str
    src: tuple
    dst: tuple
    size: int
    rate: float  # sender's pacing rate at the event (tx/drop), 0 for rx


class NetworkTracer:
    """Records wire events of every connection created after attachment."""

    def __init__(self, network: SimNetwork, keep: Optional[int] = None) -> None:
        self.network = network
        self.keep = keep
        self.records: List[TraceRecord] = []
        # Running totals survive ``keep`` trimming, so the aggregate queries
        # stay exact even when old records have been discarded.
        self._event_counts: Dict[Tuple[str, str], int] = {}
        self._tx_bytes: Dict[str, int] = {}
        self._metrics = get_registry()
        self._m_events: Dict[Tuple[str, str], Any] = {}
        self._m_tx: Dict[str, Any] = {}
        self._original_build = NetworkStack._build_connection
        self._attached = False

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self) -> "NetworkTracer":
        if self._attached:
            return self
        tracer = self
        original_build = NetworkStack._build_connection

        def build_and_hook(stack, local, remote, proto, out_dir, rtt, cc=None):
            conn = original_build(stack, local, remote, proto, out_dir, rtt, cc=cc)
            if stack.network is tracer.network:
                tracer._hook(conn)
            return conn

        NetworkStack._build_connection = build_and_hook  # type: ignore[method-assign]
        self._patched_build = build_and_hook
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached and NetworkStack._build_connection is self._patched_build:
            NetworkStack._build_connection = self._original_build  # type: ignore[method-assign]
        self._attached = False

    def __enter__(self) -> "NetworkTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _hook(self, conn: Connection) -> None:
        tracer = self
        flow = conn.flow
        original_complete = flow._complete
        original_deliver = flow.deliver

        def complete_and_record() -> None:
            dropped_before = flow.messages_dropped
            size_hint = flow.queue[0].size if flow.queue else 0
            rate = flow.cc.demand_rate(tracer.network.sim.now)
            original_complete()
            # A completion either put the message on the wire or dropped it
            # (loss on unreliable transports, link down, abort).
            if flow.messages_dropped > dropped_before:
                tracer._record("drop", conn, size_hint, rate)
            else:
                tracer._record("tx", conn, size_hint, rate)

        def deliver_and_record(msg) -> None:
            # Runs at arrival time (scheduled after the propagation delay),
            # uniformly for stream and datagram transports.
            tracer._record("rx", conn, msg.size, 0.0)
            original_deliver(msg)

        flow._complete = complete_and_record  # type: ignore[method-assign]
        flow.deliver = deliver_and_record  # type: ignore[method-assign]

    def _record(self, kind: str, conn: Connection, size: int, rate: float) -> None:
        proto = conn.proto.value
        self.records.append(
            TraceRecord(
                time=self.network.sim.now,
                kind=kind,
                conn_id=conn.id,
                proto=proto,
                src=conn.local,
                dst=conn.remote,
                size=size,
                rate=rate,
            )
        )
        key = (kind, proto)
        self._event_counts[key] = self._event_counts.get(key, 0) + 1
        if self._metrics.enabled:
            counter = self._m_events.get(key)
            if counter is None:
                counter = self._m_events[key] = self._metrics.counter(
                    "netsim.trace.events_total", kind=kind, proto=proto
                )
            counter.inc()
        if kind == "tx":
            self._tx_bytes[proto] = self._tx_bytes.get(proto, 0) + size
            if self._metrics.enabled:
                counter = self._m_tx.get(proto)
                if counter is None:
                    counter = self._m_tx[proto] = self._metrics.counter(
                        "netsim.trace.tx_bytes_total", proto=proto
                    )
                counter.inc(size)
        if self.keep is not None and len(self.records) > self.keep:
            del self.records[: len(self.records) - self.keep]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def for_connection(self, conn_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.conn_id == conn_id]

    def bytes_transmitted(self, proto: Optional[str] = None) -> int:
        """Total bytes put on the wire since attachment.

        Computed from running totals, not the record list, so the answer
        is exact even when ``keep`` has trimmed old records away.
        """
        if proto is not None:
            return self._tx_bytes.get(proto, 0)
        return sum(self._tx_bytes.values())

    def event_count(self, kind: str, proto: Optional[str] = None) -> int:
        """Events of ``kind`` seen since attachment (trim-proof)."""
        if proto is not None:
            return self._event_counts.get((kind, proto), 0)
        return sum(n for (k, _), n in self._event_counts.items() if k == kind)

    def rate_series(self, conn_id: int) -> List[tuple]:
        """(time, pacing rate) samples of a connection's transmissions."""
        return [(r.time, r.rate) for r in self.records if r.conn_id == conn_id and r.kind == "tx"]
