"""Event tracing for the simulated network.

A :class:`NetworkTracer` hooks a :class:`~repro.netsim.fabric.SimNetwork`
and records per-connection wire events (transmissions, deliveries, drops,
rate samples) as structured records — the simulator's analogue of a pcap,
useful for debugging models and for assertion-rich tests.

Tracing monkey-wraps ``FlowState._complete`` and ``Connection._receive``
on *new* connections, so attach the tracer before the traffic starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.connection import Connection, FlowState
from repro.netsim.fabric import SimNetwork
from repro.netsim.host import NetworkStack


@dataclass(frozen=True)
class TraceRecord:
    """One wire event."""

    time: float
    kind: str  # "tx" | "rx" | "drop"
    conn_id: int
    proto: str
    src: tuple
    dst: tuple
    size: int
    rate: float  # sender's pacing rate at the event (tx/drop), 0 for rx


class NetworkTracer:
    """Records wire events of every connection created after attachment."""

    def __init__(self, network: SimNetwork, keep: Optional[int] = None) -> None:
        self.network = network
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._original_build = NetworkStack._build_connection
        self._attached = False

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self) -> "NetworkTracer":
        if self._attached:
            return self
        tracer = self
        original_build = NetworkStack._build_connection

        def build_and_hook(stack, local, remote, proto, out_dir, rtt):
            conn = original_build(stack, local, remote, proto, out_dir, rtt)
            if stack.network is tracer.network:
                tracer._hook(conn)
            return conn

        NetworkStack._build_connection = build_and_hook  # type: ignore[method-assign]
        self._patched_build = build_and_hook
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached and NetworkStack._build_connection is self._patched_build:
            NetworkStack._build_connection = self._original_build  # type: ignore[method-assign]
        self._attached = False

    def __enter__(self) -> "NetworkTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _hook(self, conn: Connection) -> None:
        tracer = self
        flow = conn.flow
        original_complete = flow._complete
        original_deliver = flow.deliver

        def complete_and_record() -> None:
            dropped_before = flow.messages_dropped
            size_hint = flow.queue[0].size if flow.queue else 0
            rate = flow.cc.demand_rate(tracer.network.sim.now)
            original_complete()
            # A completion either put the message on the wire or dropped it
            # (loss on unreliable transports, link down, abort).
            if flow.messages_dropped > dropped_before:
                tracer._record("drop", conn, size_hint, rate)
            else:
                tracer._record("tx", conn, size_hint, rate)

        def deliver_and_record(msg) -> None:
            # Runs at arrival time (scheduled after the propagation delay),
            # uniformly for stream and datagram transports.
            tracer._record("rx", conn, msg.size, 0.0)
            original_deliver(msg)

        flow._complete = complete_and_record  # type: ignore[method-assign]
        flow.deliver = deliver_and_record  # type: ignore[method-assign]

    def _record(self, kind: str, conn: Connection, size: int, rate: float) -> None:
        self.records.append(
            TraceRecord(
                time=self.network.sim.now,
                kind=kind,
                conn_id=conn.id,
                proto=conn.proto.value,
                src=conn.local,
                dst=conn.remote,
                size=size,
                rate=rate,
            )
        )
        if self.keep is not None and len(self.records) > self.keep:
            del self.records[: len(self.records) - self.keep]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def for_connection(self, conn_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.conn_id == conn_id]

    def bytes_transmitted(self, proto: Optional[str] = None) -> int:
        return sum(
            r.size for r in self.records
            if r.kind == "tx" and (proto is None or r.proto == proto)
        )

    def rate_series(self, conn_id: int) -> List[tuple]:
        """(time, pacing rate) samples of a connection's transmissions."""
        return [(r.time, r.rate) for r in self.records if r.conn_id == conn_id and r.kind == "tx"]
