"""Hosts and their network stacks (listen / connect / deliver)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.netsim.connection import Connection, ConnectionState, FlowState, WireMessage
from repro.netsim.disk import DiskModel
from repro.netsim.link import Proto

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.congestion import CcSpec
    from repro.netsim.fabric import SimNetwork

Endpoint = Tuple[str, int]

EPHEMERAL_BASE = 49152


class Listener:
    """A bound (port, protocol) acceptor.

    For TCP/UDT, ``on_accept(conn)`` fires per inbound connection; for UDP,
    ``on_datagram(payload, size, src)`` fires per datagram.
    """

    __slots__ = ("port", "proto", "on_accept", "on_datagram", "closed", "cc")

    def __init__(
        self,
        port: int,
        proto: Proto,
        on_accept: Optional[Callable[[Connection], None]] = None,
        on_datagram: Optional[Callable[[Any, int, Endpoint], None]] = None,
        cc: Optional[CcSpec] = None,
    ) -> None:
        if proto is Proto.UDP and on_datagram is None:
            raise NetworkError("UDP listener needs an on_datagram callback")
        if proto is not Proto.UDP and on_accept is None:
            raise NetworkError(f"{proto.value} listener needs an on_accept callback")
        self.port = port
        self.proto = proto
        self.on_accept = on_accept
        self.on_datagram = on_datagram
        self.closed = False
        # Congestion-control spec applied to the *server-side* connections
        # this listener accepts; None keeps the per-protocol default.
        self.cc = cc


class NetworkStack:
    """Per-host transport endpoint: listeners plus outbound connections."""

    def __init__(self, host: "SimHost") -> None:
        self.host = host
        self.network: "SimNetwork" = host.network
        self.sim = host.network.sim
        self._listeners: Dict[Tuple[int, Proto], Listener] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.connections: List[Connection] = []

    @property
    def ip(self) -> str:
        return self.host.ip

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def listen(
        self,
        port: int,
        proto: Proto,
        on_accept: Optional[Callable[[Connection], None]] = None,
        on_datagram: Optional[Callable[[Any, int, Endpoint], None]] = None,
        cc: Optional[CcSpec] = None,
    ) -> Listener:
        key = (port, proto)
        if key in self._listeners:
            raise NetworkError(f"port {port}/{proto.value} already bound on {self.ip}")
        listener = Listener(port, proto, on_accept, on_datagram, cc=cc)
        self._listeners[key] = listener
        return listener

    def unlisten(self, listener: Listener) -> None:
        listener.closed = True
        self._listeners.pop((listener.port, listener.proto), None)

    def _listener_for(self, port: int, proto: Proto) -> Optional[Listener]:
        return self._listeners.get((port, proto))

    # ------------------------------------------------------------------
    # outbound connections
    # ------------------------------------------------------------------
    def _ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def connect(
        self,
        remote: Endpoint,
        proto: Proto,
        on_connected: Optional[Callable[[Connection], None]] = None,
        on_failed: Optional[Callable[[Connection, str], None]] = None,
        local_port: Optional[int] = None,
        hello: Any = None,
        cc: Optional[CcSpec] = None,
    ) -> Connection:
        """Open a connection to ``remote``; TCP/UDT handshake takes one RTT.

        ``hello`` is an opaque payload carried with the handshake and
        exposed to the acceptor as ``conn.peer_hello``.  ``cc`` picks the
        congestion-control policy by registry name (or ``(name, params)``
        pair / factory); None keeps the per-protocol default.
        """
        remote_ip, remote_port = remote
        out_dir = self.network.path(self.ip, remote_ip)
        back_dir = self.network.path(remote_ip, self.ip)
        rtt = out_dir.spec.delay + back_dir.spec.delay
        local: Endpoint = (self.ip, local_port if local_port is not None else self._ephemeral_port())

        conn = self._build_connection(local, remote, proto, out_dir, rtt, cc=cc)
        conn.on_connected = on_connected
        conn.on_failed = on_failed
        conn.hello = hello
        self.connections.append(conn)

        if proto is Proto.UDP:
            # Connectionless: usable immediately, datagrams dispatched by port.
            conn._activate()
            return conn

        if not out_dir.up or not back_dir.up:
            self.sim.schedule(
                self.network.connect_timeout, lambda: conn._fail("link down"), label="conn-fail"
            )
            return conn

        remote_stack = self.network.stack_for(remote_ip)

        def syn_arrives() -> None:
            listener = remote_stack._listener_for(remote_port, proto)
            if listener is None or listener.closed:
                self.sim.schedule(back_dir.spec.delay, lambda: conn._fail("connection refused"))
                return
            server = remote_stack._accept(conn, listener)
            self.sim.schedule(back_dir.spec.delay, conn._activate, label="conn-established")

        self.sim.schedule(out_dir.spec.delay, syn_arrives, label="conn-syn")
        return conn

    def _accept(self, client: Connection, listener: Listener) -> Connection:
        """Create the server-side connection for an inbound handshake."""
        out_dir = self.network.path(self.ip, client.local[0])
        back_dir = self.network.path(client.local[0], self.ip)
        rtt = out_dir.spec.delay + back_dir.spec.delay
        local: Endpoint = (self.ip, listener.port)
        server = self._build_connection(
            local, client.local, client.proto, out_dir, rtt, cc=listener.cc
        )
        self.connections.append(server)
        server.peer = client
        client.peer = server
        server.peer_hello = client.hello
        server.state = ConnectionState.ACTIVE
        if listener.on_accept is not None:
            listener.on_accept(server)
        return server

    def _build_connection(
        self,
        local: Endpoint,
        remote: Endpoint,
        proto: Proto,
        out_dir,
        rtt: float,
        cc: Optional[CcSpec] = None,
    ) -> Connection:
        cc = self.network.make_congestion_control(proto, rtt, out_dir, cc=cc)
        rng = self.network.rngs.get(f"link.{out_dir.name}.loss")
        conn_id = self.network.ids.next("connection")
        queue_limit = (
            self.network.config.get_float("net.udp.socket_buffer", 2 * 1024 * 1024)
            if proto is Proto.UDP
            else float("inf")
        )

        conn_box: List[Connection] = []

        def deliver(msg: WireMessage) -> None:
            conn = conn_box[0]
            if conn.proto is Proto.UDP:
                remote_stack = self.network.stack_for(conn.remote[0])
                remote_stack._deliver_udp(conn.remote[1], msg, conn.local)
            elif conn.peer is not None:
                conn.peer._receive(msg)

        flow = FlowState(
            sim=self.sim,
            link_dir=out_dir,
            cc=cc,
            rng=rng,
            deliver=deliver,
            queue_limit_bytes=queue_limit,
        )
        conn = Connection(self, local, remote, proto, flow, conn_id)
        conn_box.append(conn)

        metrics = self.network.metrics
        metrics.counter("netsim.connections_total", proto=proto.value).inc()
        self.network.tracer.event(
            "netsim.connection_open", conn=conn_id, proto=proto.value,
            local=f"{local[0]}:{local[1]}", remote=f"{remote[0]}:{remote[1]}",
        )
        if metrics.enabled:
            # Sampled only at snapshot time: congestion window and pacing
            # rate per connection, via the side-effect-free cc accessors.
            labels = {"conn": str(conn_id), "proto": proto.value, "host": self.ip}
            metrics.gauge("netsim.cc.window_bytes", **labels).set_function(cc.window_bytes)
            metrics.gauge("netsim.cc.rate", **labels).set_function(cc.current_rate)
            metrics.gauge("netsim.cc.queued_bytes", **labels).set_function(
                lambda: flow.queued_bytes
            )
        return conn

    # ------------------------------------------------------------------
    # UDP dispatch
    # ------------------------------------------------------------------
    def _deliver_udp(self, port: int, msg: WireMessage, src: Endpoint) -> None:
        listener = self._listener_for(port, Proto.UDP)
        if listener is None or listener.closed:
            return  # silently dropped, as real UDP would be
        assert listener.on_datagram is not None
        listener.on_datagram(msg.payload, msg.size, src)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def active_connections(self) -> List[Connection]:
        self.connections = [
            c for c in self.connections
            if c.state in (ConnectionState.CONNECTING, ConnectionState.ACTIVE)
        ]
        return list(self.connections)


class SimHost:
    """A simulated machine: one IP, one network stack, one disk."""

    def __init__(self, network: "SimNetwork", name: str, ip: str, disk: Optional[DiskModel] = None) -> None:
        self.network = network
        self.name = name
        self.ip = ip
        self.stack = NetworkStack(self)
        self.disk = disk if disk is not None else DiskModel(network.sim)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimHost({self.name!r}, {self.ip})"
