#!/usr/bin/env python3
"""CI determinism gate: hash-seed independence of simulated runs.

The simulator promises bitwise-identical histories for identical seeds.
A classic way to break that silently is to iterate an unordered ``set``
or ``dict`` of objects whose ordering depends on ``hash()`` — which
Python randomises per process via ``PYTHONHASHSEED``.  This script

1. runs the observability demo (``repro obs``) in two subprocesses with
   *different* hash seeds and diffs the full JSON artifacts (metrics,
   trace, and summary), and
2. runs ``tests/test_determinism.py`` under both hash seeds,

failing loudly on any drift.  Usage: ``python scripts/check_determinism.py``.
"""

from __future__ import annotations

import difflib
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HASH_SEEDS = ("1", "4242")
DEMO_ARGS = ("--duration", "5", "--seed", "7")


def run(cmd: list[str], hash_seed: str) -> None:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    print(f"+ PYTHONHASHSEED={hash_seed}", " ".join(cmd))
    subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True)


def demo_artifact(workdir: Path, hash_seed: str) -> Path:
    out = workdir / f"obs-hashseed-{hash_seed}.json"
    run(
        [sys.executable, "-m", "repro.cli", "obs", *DEMO_ARGS,
         "--trace", "--output", str(out)],
        hash_seed,
    )
    return out


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        workdir = Path(tmp)
        artifacts = [demo_artifact(workdir, seed) for seed in HASH_SEEDS]

        texts = [p.read_text() for p in artifacts]
        if texts[0] != texts[1]:
            print("DETERMINISM FAILURE: obs artifacts differ across hash seeds")
            diff = difflib.unified_diff(
                texts[0].splitlines(), texts[1].splitlines(),
                fromfile=f"PYTHONHASHSEED={HASH_SEEDS[0]}",
                tofile=f"PYTHONHASHSEED={HASH_SEEDS[1]}",
                lineterm="",
            )
            shown = list(diff)[:80]
            print("\n".join(shown))
            return 1

        document = json.loads(texts[0])
        families = len(document["metrics"])
        print(f"obs artifacts identical across hash seeds "
              f"({families} metric families, {len(document.get('trace', []))} trace records)")

    for seed in HASH_SEEDS:
        run(
            [sys.executable, "-m", "pytest", "-x", "-q", "tests/test_determinism.py"],
            seed,
        )

    print("determinism check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
