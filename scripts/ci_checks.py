#!/usr/bin/env python3
"""Assertions the CI campaign matrix runs against campaign artifacts.

Moved out of inline workflow YAML so the checks are testable, diffable
and shared between CI and local runs:

    python scripts/ci_checks.py faults faults-a.json
    python scripts/ci_checks.py chaos chaos-a.json
    python scripts/ci_checks.py fleet fleet-a.json fleet-b.json \
        --baseline BENCH_FLEET.json

Each subcommand exits non-zero with a reason on the first failed
assertion and prints a one-line OK summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _metric_total(doc: Dict[str, Any], name: str) -> float:
    return sum(entry["value"] for entry in doc["metrics"][name])


def check_faults(args: argparse.Namespace) -> int:
    """The fault campaign must actually have exercised recovery."""
    doc = _load(args.snapshot)
    summary = doc["meta"]["summary"]
    assert summary["reconnect_attempts"] > 0, "no reconnect attempts"
    assert summary["reconnect_recovered"] > 0, "channel never recovered"
    for name in ("messaging.reconnect.attempts_total",
                 "messaging.reconnect.recovered_total"):
        assert _metric_total(doc, name) > 0, f"{name} is zero"
    print(f"recovery OK: {summary['reconnect_attempts']} attempts, "
          f"{summary['reconnect_recovered']} recovered, "
          f"backoff {summary['backoff_delays']}")
    return 0


def check_chaos(args: argparse.Namespace) -> int:
    """The chaos campaign must have restarted, converged and balanced."""
    doc = _load(args.snapshot)
    summary = doc["meta"]["summary"]
    assert summary["restarts"] > 0, "supervision never restarted anything"
    assert summary["transfer_done"], "transfer did not complete after restarts"
    assert summary["pings_answered"] > summary["pings_answered_before_tail"], \
        "no pings answered after the last chaos event"
    restarts = _metric_total(doc, "kompics.restarts_total")
    assert restarts == summary["restarts"], "restart counter mismatch"
    deadletters = _metric_total(doc, "kompics.deadletters_total")
    assert deadletters == summary["deadletters"], \
        "dead-letter leak: counter mismatch"
    print(f"chaos OK: {summary['restarts']} restarts, "
          f"{summary['deadletters']} dead letters, converged")
    return 0


def check_chaos_aio(args: argparse.Namespace) -> int:
    """Real-socket chaos: zero leaks, zero duplicates, epochs monotone.

    The artifact is one ``repro chaos --backend aio --format json`` run:
    a live AioNetwork killed and supervision-restarted mid-transfer.  The
    gate asserts the crash-recovery contract, not throughput: every
    MessageNotify resolved exactly once (``leaked == 0``), no chunk was
    delivered twice (the epoch fence + dedup window), every planned kill
    actually happened, and each incarnation announced a strictly larger
    network epoch with the ``aio.epoch``/``aio.nodup`` invariants clean.
    """
    doc = _load(args.artifact)
    assert doc.get("kind") == "chaos-aio", \
        f"not a chaos-aio artifact: kind={doc.get('kind')!r}"
    assert doc["restarts_done"] >= 1, "no supervised restart ever happened"
    assert doc["restarts_done"] == doc["restarts_planned"], \
        f"only {doc['restarts_done']}/{doc['restarts_planned']} kills landed"
    assert doc["leaked"] == 0, \
        f"{doc['leaked']} notifies never resolved (leak across restart)"
    assert doc["duplicates_delivered"] == 0, \
        f"{doc['duplicates_delivered']} duplicate chunk deliveries"
    epochs = doc["epochs"]
    assert len(epochs) == doc["restarts_done"] + 1, \
        f"expected {doc['restarts_done'] + 1} epochs, saw {len(epochs)}"
    assert all(a < b for a, b in zip(epochs, epochs[1:])), \
        f"network epochs not strictly increasing: {epochs}"
    assert doc["check_ok"], "invariant violations: " + "; ".join(doc["violations"])
    assert doc["sender_done"], "sender never finished its accounting"
    if doc["redelivery"] == "at-least-once":
        assert doc["delivered_unique"] == doc["chunks"], \
            f"at-least-once lost chunks: {doc['delivered_unique']}/{doc['chunks']}"
        assert doc["failed"] == 0, \
            f"at-least-once failed {doc['failed']} notifies"
    assert doc["converged"], "campaign did not converge"
    assert "aio" in doc.get("check_streams", {}), \
        "no aio digest stream recorded (checker was off?)"
    print(f"chaos-aio OK: {doc['transport']}/{doc['redelivery']}, "
          f"{doc['restarts_done']} restart(s), epochs {epochs}, "
          f"{doc['delivered_unique']}/{doc['chunks']} delivered, "
          f"0 leaked, 0 duplicated")
    return 0


def check_loopback(args: argparse.Namespace) -> int:
    """The real-socket loopback run must be loss-free and leak-free.

    Every transport's run has to deliver all chunks, resolve every
    MessageNotify (success), and leak nothing; the DATA run must have
    actually exercised the adaptive selector (only wire protocols on the
    received messages, never the DATA pseudo-protocol).
    """
    doc = _load(args.artifact)
    assert doc.get("kind") == "loopback-comparison", \
        f"not a loopback artifact: kind={doc.get('kind')!r}"
    runs = doc["runs"]
    assert runs, "loopback artifact contains no runs"
    for run in runs:
        t = run["transport"]
        assert run["delivered"] == run["chunks"], \
            f"{t}: delivered {run['delivered']}/{run['chunks']} chunks"
        assert run["notifies_ok"] == run["chunks"], \
            f"{t}: only {run['notifies_ok']}/{run['chunks']} notifies succeeded"
        assert run["notifies_failed"] == 0, \
            f"{t}: {run['notifies_failed']} failed notifies"
        assert run["leaked_notifies"] == 0, \
            f"{t}: {run['leaked_notifies']} notifies never resolved (leak)"
        assert run["throughput"] > 0, f"{t}: zero throughput"
        if t == "data":
            assert "data" not in run["protocols"], \
                "DATA pseudo-protocol reached the wire unstamped"
            assert run["protocols"], "data run recorded no wire protocols"
    summary = ", ".join(
        f"{run['transport']} {run['throughput'] / (1024 * 1024):.1f} MB/s"
        for run in runs
    )
    print(f"loopback OK: {len(runs)} run(s) complete, zero leaks ({summary})")
    return 0


def check_fleet(args: argparse.Namespace) -> int:
    """Fleet campaign artifacts: valid schema, deterministic, no failures.

    Compares two artifacts from independent invocations (different
    ``PYTHONHASHSEED``) byte for byte, validates the document against
    its own units, requires every unit ok, and — when a committed
    baseline exists — pins the merged digest to it so a silent
    determinism break shows up as a diff against history.  A missing
    baseline is tolerated with a note (the artifact lands in the same
    PR that introduces the gate).
    """
    from repro.bench.fleet import validate_campaign_document

    with open(args.run_a, "rb") as fh:
        bytes_a = fh.read()
    with open(args.run_b, "rb") as fh:
        bytes_b = fh.read()
    assert bytes_a == bytes_b, \
        f"{args.run_a} and {args.run_b} differ: campaign is not deterministic"

    doc = json.loads(bytes_a)
    problems = validate_campaign_document(doc)
    assert not problems, "invalid campaign document: " + "; ".join(problems)
    totals = doc["merged"]["totals"]
    assert totals["failed"] == 0, f"{totals['failed']} campaign unit(s) failed"

    if args.baseline and os.path.exists(args.baseline):
        baseline = _load(args.baseline)
        base_units = {
            (u["scenario"], u["seed"]): u.get("digest")
            for u in baseline.get("units", [])
        }
        matched = mismatched = 0
        for unit in doc["units"]:
            expected = base_units.get((unit["scenario"], unit["seed"]))
            if expected is None:
                continue
            if unit.get("digest") == expected:
                matched += 1
            else:
                mismatched += 1
                print(f"unit digest drift: {unit['scenario']} seed "
                      f"{unit['seed']}: {unit.get('digest')} != {expected}",
                      file=sys.stderr)
        assert mismatched == 0, \
            f"{mismatched} unit digest(s) drifted from {args.baseline}"
        note = f", {matched} unit digest(s) match {args.baseline}"
    else:
        note = f", baseline {args.baseline!r} not present (tolerated)"
    print(f"fleet OK: {totals['ok']}/{totals['units']} units, "
          f"merged digest {doc['merged']['digest']}{note}")
    return 0


def check_hygiene(args: argparse.Namespace) -> int:
    """No compiled Python artifacts may ever be tracked by git.

    A tracked ``.pyc`` is stale the moment its source changes and breaks
    fresh-clone determinism; this gate fails the build if ``git ls-files``
    reports any ``__pycache__`` directory or ``*.pyc`` file.
    """
    import subprocess

    out = subprocess.run(
        ["git", "ls-files"], capture_output=True, text=True, check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    tracked = out.stdout.splitlines()
    offenders = [
        path for path in tracked
        if "__pycache__" in path.split("/") or path.endswith(".pyc")
    ]
    assert not offenders, \
        "compiled artifacts tracked by git: " + ", ".join(offenders)
    print(f"hygiene OK: {len(tracked)} tracked files, no __pycache__/*.pyc")
    return 0


def check_cc_matrix(args: argparse.Namespace) -> int:
    """The congestion-control sweep must be deterministic per arm.

    Takes two artifacts from independent ``repro fleet campaign`` runs
    over the registered cc scenarios (different ``PYTHONHASHSEED``) and
    asserts: byte-identical artifacts, a valid campaign document, every
    unit converged, at least ``--min-arms`` distinct cc scenarios swept,
    and — since each arm drives a different controller — pairwise
    distinct digests per seed across arms.  Identical digests would mean
    the ``cc=`` spec silently stopped reaching the flows.
    """
    from repro.bench.fleet import validate_campaign_document

    with open(args.run_a, "rb") as fh:
        bytes_a = fh.read()
    with open(args.run_b, "rb") as fh:
        bytes_b = fh.read()
    assert bytes_a == bytes_b, \
        f"{args.run_a} and {args.run_b} differ: cc sweep is not deterministic"

    doc = json.loads(bytes_a)
    problems = validate_campaign_document(doc)
    assert not problems, "invalid campaign document: " + "; ".join(problems)
    totals = doc["merged"]["totals"]
    assert totals["failed"] == 0, f"{totals['failed']} cc sweep unit(s) failed"

    cc_units = [u for u in doc["units"] if u["scenario"].startswith("cc-")]
    assert cc_units, "no cc-* scenarios in the artifact"
    arms = sorted({u["scenario"] for u in cc_units})
    assert len(arms) >= args.min_arms, \
        f"only {len(arms)} cc arm(s) swept ({', '.join(arms)}); " \
        f"need at least {args.min_arms}"

    by_seed: Dict[Any, Dict[str, str]] = {}
    for unit in cc_units:
        by_seed.setdefault(unit["seed"], {})[unit["scenario"]] = unit["digest"]
    for seed, digests in sorted(by_seed.items()):
        values = list(digests.values())
        assert len(set(values)) == len(values), \
            f"seed {seed}: cc arms produced colliding digests {digests}"
    print(f"cc-matrix OK: {len(arms)} arms ({', '.join(arms)}), "
          f"{len(cc_units)} units, digests distinct per seed, "
          f"merged digest {doc['merged']['digest']}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_faults = sub.add_parser("faults", help="fault-campaign snapshot checks")
    p_faults.add_argument("snapshot")
    p_faults.set_defaults(func=check_faults)

    p_chaos = sub.add_parser("chaos", help="chaos-campaign snapshot checks")
    p_chaos.add_argument("snapshot")
    p_chaos.set_defaults(func=check_chaos)

    p_chaos_aio = sub.add_parser(
        "chaos-aio", help="real-socket chaos artifact checks"
    )
    p_chaos_aio.add_argument("artifact")
    p_chaos_aio.set_defaults(func=check_chaos_aio)

    p_loopback = sub.add_parser(
        "loopback", help="real-socket loopback artifact checks"
    )
    p_loopback.add_argument("artifact")
    p_loopback.set_defaults(func=check_loopback)

    p_fleet = sub.add_parser("fleet", help="fleet campaign artifact checks")
    p_fleet.add_argument("run_a")
    p_fleet.add_argument("run_b")
    p_fleet.add_argument("--baseline", default="BENCH_FLEET.json",
                         help="committed campaign artifact to pin digests "
                              "against (missing file tolerated)")
    p_fleet.set_defaults(func=check_fleet)

    p_hygiene = sub.add_parser(
        "hygiene", help="fail if git tracks __pycache__/*.pyc artifacts"
    )
    p_hygiene.set_defaults(func=check_hygiene)

    p_cc = sub.add_parser(
        "cc-matrix", help="congestion-control sweep artifact checks"
    )
    p_cc.add_argument("run_a")
    p_cc.add_argument("run_b")
    p_cc.add_argument("--min-arms", type=int, default=3,
                      help="minimum distinct cc-* scenarios required")
    p_cc.set_defaults(func=check_cc_matrix)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AssertionError as exc:
        print(f"{args.command} check FAILED: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
