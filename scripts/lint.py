#!/usr/bin/env python3
"""Lint gate: run ruff when available, else a built-in AST fallback.

CI installs ruff and gets the full ``E``/``F``/``I`` rule set from
``pyproject.toml``.  Offline development containers may not have ruff;
there we still enforce the subset of rules that matters most and that we
can check with the standard library alone:

* files must parse (syntax errors);
* no unused ``import X`` / ``from X import Y`` bindings (F401-lite);
* no star imports (F403);
* no trailing whitespace and no tabs in indentation (W291/W191-lite).

Exit status is non-zero when any violation is found, so both paths are
usable as a CI step: ``python scripts/lint.py [paths...]``.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "benchmarks", "scripts"]

#: modules whose import is their side effect (pytest plugins etc.)
SIDE_EFFECT_IMPORTS = {"__future__"}


def run_ruff(paths: list[str]) -> int:
    cmd = ["ruff", "check", *paths]
    print("+", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT)


class _ImportVisitor(ast.NodeVisitor):
    """Collect imported names and every identifier the module uses."""

    def __init__(self) -> None:
        self.imports: dict[str, tuple[int, str]] = {}
        self.used: set[str] = set()
        self.star_imports: list[int] = []
        self.exported: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imports[name] = (node.lineno, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in SIDE_EFFECT_IMPORTS:
            return
        for alias in node.names:
            if alias.name == "*":
                self.star_imports.append(node.lineno)
                continue
            name = alias.asname or alias.name
            self.imports[name] = (node.lineno, alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # __all__ = [...] re-exports names without a Load reference.
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for elt in ast.walk(node.value):
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        self.exported.add(elt.value)
        self.generic_visit(node)


def _string_annotation_names(tree: ast.AST) -> set[str]:
    """Names referenced inside string annotations ('SimNetwork' etc.)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        annotation = getattr(node, "annotation", None)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                continue
            for sub in ast.walk(parsed):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")

    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.rstrip("\n") != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        stripped = line.lstrip(" ")
        if stripped.startswith("\t"):
            problems.append(f"{path}:{lineno}: tab in indentation")

    # __init__.py files re-export; skip unused-import analysis there.
    if path.name == "__init__.py":
        return problems

    visitor = _ImportVisitor()
    visitor.visit(tree)
    used = visitor.used | _string_annotation_names(tree)
    # Docstring doctests and comments are not tracked; a name mentioned in
    # TYPE_CHECKING-only code is still a Load so it counts as used.
    for name, (lineno, module) in sorted(visitor.imports.items()):
        if name in used or name in visitor.exported:
            continue
        problems.append(f"{path}:{lineno}: unused import '{module}' (as '{name}')")
    for lineno in visitor.star_imports:
        problems.append(f"{path}:{lineno}: star import")
    return problems


def run_fallback(paths: list[str]) -> int:
    print("ruff not found; running stdlib AST fallback linter")
    files: list[Path] = []
    for raw in paths:
        target = (REPO_ROOT / raw).resolve()
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} files, {len(problems)} problem(s)")
    return 1 if problems else 0


def main(argv: list[str]) -> int:
    paths = argv or DEFAULT_PATHS
    if shutil.which("ruff"):
        return run_ruff(paths)
    return run_fallback(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
