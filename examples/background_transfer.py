"""LEDBAT background bulk data: the scavenger extension in action.

The paper's introduction recalls implementing LEDBAT on Kompics before
moving to UDT, and §IV invites extending per-message selection to other
protocols.  This example shows why a scavenger matters: a big background
sync over LEDBAT leaves a foreground TCP transfer (and TCP control pings)
essentially untouched, while the same background traffic over TCP starves
them.

Run:  python examples/background_transfer.py
"""

from repro.apps import FileReceiver, FileSender, SyntheticDataset
from repro.bench.harness import run_in_steps, wire_endpoint
from repro.bench.scenario import Setup, TestbedPair
from repro.messaging import Transport

MB = 1024 * 1024
SETUP = Setup(name="office-uplink", rtt=0.006, bandwidth=40 * MB, udp_cap=None)


def run_scenario(background: Transport | None) -> float:
    pair = TestbedPair(SETUP, seed=11)
    snd = wire_endpoint(pair, pair.sender, "snd")
    rcv = wire_endpoint(pair, pair.receiver, "rcv")
    receiver = pair.system.create(FileReceiver, pair.receiver.address, disk=pair.receiver.disk)
    rcv.attach(pair.system, receiver)
    pair.system.start(receiver)

    if background is not None:
        bulk = pair.system.create(
            FileSender, pair.sender.address, pair.receiver.address,
            SyntheticDataset(size=400 * MB, seed=1),
            transport=background, name="background-sync",
        )
        snd.attach(pair.system, bulk)
        pair.system.start(bulk)

    foreground = pair.system.create(
        FileSender, pair.sender.address, pair.receiver.address,
        SyntheticDataset(size=40 * MB, seed=2),
        transport=Transport.TCP, disk=pair.sender.disk, name="foreground",
    )
    snd.attach(pair.system, foreground)
    pair.system.start(foreground)
    run_in_steps(pair, 600.0, lambda: foreground.definition.duration is not None)
    return foreground.definition.duration


def main() -> None:
    print(f"40 MB foreground TCP transfer on a {SETUP.bandwidth // MB} MB/s link,\n"
          f"while a 400 MB background sync runs over different transports:\n")
    for label, transport in (
        ("no background sync", None),
        ("background over TCP", Transport.TCP),
        ("background over LEDBAT", Transport.LEDBAT),
    ):
        duration = run_scenario(transport)
        print(f"  {label:24s}: foreground took {duration:6.2f}s "
              f"({40 * MB / duration / MB:5.1f} MB/s)")
    print(
        "\nLEDBAT (RFC 6817) is less-than-best-effort: it soaks up spare\n"
        "capacity and yields the moment foreground traffic appears."
    )


if __name__ == "__main__":
    main()
