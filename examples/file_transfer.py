"""Bulk file transfer over TCP, UDT and the adaptive DATA protocol.

Replays the paper's §V-B experiment on the simulated EU2US setup
(155 ms RTT, lossy WAN, EC2-style 10 MB/s UDP policing): the paper's
395 MB NetCDF-like dataset is moved disk-to-disk with each transport,
four times per transport so the DATA learner's ramp-up and steady state
are both visible.

Run:  python examples/file_transfer.py
"""

from repro.bench import run_transfer_repeated, setup_by_name
from repro.messaging import Transport

MB = 1024 * 1024


def main() -> None:
    import os

    quick = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
    setup = setup_by_name("EU2US")
    size = (64 if quick else 395) * MB
    print(f"Transferring {size // MB} MB disk-to-disk on {setup.name} "
          f"(RTT {setup.rtt * 1000:.0f} ms, {setup.loss:.0e} loss, "
          f"UDP capped at {setup.udp_cap // MB} MB/s)\n")

    print(f"{'transport':9s} " + " ".join(f"{'run ' + str(i + 1):>9s}" for i in range(2 if quick else 4)) + f" {'mean':>9s}")
    for transport in (Transport.TCP, Transport.UDT, Transport.DATA):
        runs = 2 if quick else 4
        rep = run_transfer_repeated(setup, transport, size, min_runs=runs, max_runs=runs, base_seed=1)
        runs = [size / d / MB for d in rep.durations]
        print(
            f"{transport.value:9s} "
            + " ".join(f"{r:7.2f}MB" for r in runs)
            + f" {rep.mean_throughput / MB:7.2f}MB"
        )

    print(
        "\nTCP collapses at this bandwidth-delay product once past slow-start;\n"
        "UDT rides at the UDP policing cap; DATA learns the mix online, with\n"
        "visibly higher run-to-run variance while it keeps exploring."
    )


if __name__ == "__main__":
    main()
