"""Watch the Sarsa(λ) transport-ratio learner converge.

Drives a saturating DATA stream over a TCP-favouring link and prints the
per-episode telemetry for all three value-function representations from
the paper (§IV-C): the plain Q-matrix, the model-based V(s), and the
quadratically approximated V(s).

Run:  python examples/adaptive_learning.py
"""

import random

from repro.bench.harness import run_learner_trace, run_static_reference
from repro.core import TDRatioLearner
from repro.messaging import Transport

import os

MB = 1024 * 1024
DURATION = 30.0 if os.environ.get("REPRO_EXAMPLE_QUICK") == "1" else 90.0
SEED = 4


def main() -> None:
    tcp_ref = run_static_reference(Transport.TCP, duration=DURATION, seed=SEED)
    udt_ref = run_static_reference(Transport.UDT, duration=DURATION, seed=SEED)
    steady_from = DURATION * 0.4
    tcp = tcp_ref.throughput.window_mean(steady_from, DURATION) / MB
    udt = udt_ref.throughput.window_mean(steady_from, DURATION) / MB
    print(f"References: TCP-only {tcp:.1f} MB/s, UDT-only {udt:.1f} MB/s "
          f"(TCP-favouring link — the learner should go to ratio -1)\n")

    traces = {}
    for kind, eps in (("matrix", 0.8), ("model", 0.3), ("approx", 0.3)):
        rng = random.Random(SEED)
        traces[kind] = run_learner_trace(
            kind,
            prp_factory=lambda: TDRatioLearner(rng, kind, epsilon_max=eps),
            duration=DURATION,
            seed=SEED,
        )

    print(f"{'time':>5s} | " + " | ".join(f"{k:>22s}" for k in traces))
    print(f"{'':>5s} | " + " | ".join(f"{'MB/s':>10s} {'ratio':>11s}" for _ in traces))
    for t in range(10, int(DURATION) + 1, 10):
        cells = []
        for kind, trace in traces.items():
            thr = (trace.throughput.window_mean(t - 10, t) or 0.0) / MB
            ratio = trace.ratio_true.window_mean(t - 10, t)
            cells.append(f"{thr:10.2f} {ratio if ratio is not None else float('nan'):+11.2f}")
        print(f"{t:4d}s | " + " | ".join(cells))

    print(
        "\nThe matrix explores 55 Q-entries one by one; the model-based variant\n"
        "shares an 11-entry V(s) across actions; the approximation extrapolates\n"
        "unexplored states from a quadratic fit and converges within seconds."
    )


if __name__ == "__main__":
    main()
