"""Epidemic gossip over a 12-node P2P mesh — the paper's §I motivation.

Every node gossips rumor *digests* to two random peers each round over
UDP (cheap to lose), and pulls missing rumor payloads over TCP.  The
per-message transport choice makes this split a one-liner per message.

Run:  python examples/gossip.py
"""

from repro.apps.gossip import GossipNode, register_gossip_serializers
from repro.kompics import KompicsSystem, SimTimerComponent, Timer
from repro.messaging import BasicAddress, NettyNetwork, Network, SerializerRegistry
from repro.netsim import LinkSpec, SimNetwork
from repro.sim import Simulator

MB = 1024 * 1024
N = 12
ROUND = 0.25


def main() -> None:
    sim = Simulator()
    fabric = SimNetwork(sim, seed=23)
    system = KompicsSystem.simulated(sim, seed=23)
    hosts = [fabric.add_host(f"peer{i}", f"10.9.0.{i + 1}") for i in range(N)]
    for i in range(N):
        for j in range(i + 1, N):
            # A slightly lossy mesh: digests over UDP may vanish.
            fabric.connect_hosts(hosts[i], hosts[j], LinkSpec(20 * MB, 0.015, loss=0.01))

    addresses = [BasicAddress(h.ip, 34000) for h in hosts]
    timer = system.create(SimTimerComponent)
    system.start(timer)
    nodes = []
    for i, host in enumerate(hosts):
        network = system.create(
            NettyNetwork, addresses[i], host,
            serializers=register_gossip_serializers(SerializerRegistry()),
            name=f"net-{i}",
        )
        node = system.create(
            GossipNode, addresses[i], addresses,
            fanout=2, round_interval=ROUND, name=f"gossip-{i}",
        )
        system.connect(network.provided(Network), node.definition.net)
        system.connect(timer.provided(Timer), node.definition.timer)
        system.start(network)
        system.start(node)
        nodes.append(node.definition)
    sim.run_until(0.1)

    nodes[0].publish(42, b"the rumor payload")
    print(f"peer0 publishes rumor 42 into a {N}-node mesh "
          f"(fanout 2, {ROUND}s rounds, 1% digest loss):\n")
    for step in range(1, 17):
        sim.run_until(0.1 + step * ROUND)
        infected = sum(1 for n in nodes if n.knows(42))
        bar = "#" * infected
        print(f"  round {step:2d}: {infected:2d}/{N} {bar}")
        if infected == N:
            break

    spread = [n.first_seen[42] for n in nodes if n.knows(42)]
    print(f"\nfully disseminated in {max(spread):.2f}s "
          f"(~{max(spread) / ROUND:.0f} rounds, log2({N}) = 3.6)")
    print(f"digests sent: {sum(n.digests_sent for n in nodes)} (UDP), "
          f"pulls answered: {sum(n.pulls_answered for n in nodes)} (TCP)")


if __name__ == "__main__":
    main()
