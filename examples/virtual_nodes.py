"""Virtual nodes: many addressable endpoints over one network instance.

Three vnodes share a single NettyNetwork.  Messages between vnodes of the
same instance are *reflected* — they never get serialized and the receiver
sees the very same (immutable) message object — while messages to a vnode
on another host travel the wire like any other (paper §III-B).

Run:  python examples/virtual_nodes.py
"""

from repro.kompics import ComponentDefinition, KompicsSystem
from repro.messaging import (
    BaseMsg,
    BasicAddress,
    BasicHeader,
    Msg,
    NettyNetwork,
    Network,
    Transport,
    VirtualAddress,
    VirtualNetworkChannel,
)
from repro.netsim import LinkSpec, SimNetwork
from repro.sim import Simulator

MB = 1024 * 1024


class Greeting(BaseMsg):
    __slots__ = ("text",)

    def __init__(self, header, text: str) -> None:
        super().__init__(header)
        self.text = text


class Worker(ComponentDefinition):
    """A vnode that greets back whoever greets it."""

    def __init__(self, address: VirtualAddress) -> None:
        super().__init__()
        self.net = self.requires(Network)
        self.address = address
        self.seen = []
        self.subscribe(self.net, Greeting, self.on_greeting)

    def on_greeting(self, msg: Greeting) -> None:
        self.seen.append(msg)
        print(f"  [{self.address!r}] got {msg.text!r} from {msg.header.source!r}"
              f" (same object reflected: {msg.header.source.same_host_as(self.address)})")
        if not msg.text.startswith("re:"):
            reply = Greeting(
                BasicHeader(self.address, msg.header.source, Transport.TCP),
                f"re: {msg.text}",
            )
            self.trigger(reply, self.net)

    def greet(self, to, text: str) -> Greeting:
        msg = Greeting(BasicHeader(self.address, to, Transport.TCP), text)
        self.trigger(msg, self.net)
        return msg


def main() -> None:
    sim = Simulator()
    fabric = SimNetwork(sim, seed=1)
    host_a = fabric.add_host("a", "10.0.0.1")
    host_b = fabric.add_host("b", "10.0.0.2")
    fabric.connect_hosts(host_a, host_b, LinkSpec(bandwidth=100 * MB, delay=0.010))
    system = KompicsSystem.simulated(sim, seed=1)

    addr_a = BasicAddress(host_a.ip, 34000)
    addr_b = BasicAddress(host_b.ip, 34000)
    net_a = system.create(NettyNetwork, addr_a, host_a)
    net_b = system.create(NettyNetwork, addr_b, host_b)

    # Two vnodes on host a, one on host b — all behind the same ports.
    vnc_a = VirtualNetworkChannel(system, net_a)
    vnc_b = VirtualNetworkChannel(system, net_b)
    workers = {}
    for vid, (vnc, base) in {
        b"alpha": (vnc_a, addr_a),
        b"beta": (vnc_a, addr_a),
        b"gamma": (vnc_b, addr_b),
    }.items():
        vaddr = base.with_vnode(vid)
        worker = system.create(Worker, vaddr, name=f"worker-{vid.decode()}")
        vnc.connect_vnode(worker.definition.net, vid)
        workers[vid] = worker

    for component in (net_a, net_b, *workers.values()):
        system.start(component)
    sim.run()

    print("alpha -> beta (same instance: reflected, never serialized)")
    local_msg = workers[b"alpha"].definition.greet(addr_a.with_vnode(b"beta"), "hi beta")
    sim.run()
    received = workers[b"beta"].definition.seen[0]
    print(f"  same Python object on both sides: {received is local_msg}")

    print("alpha -> gamma (cross-host: serialized and sent over the wire)")
    workers[b"alpha"].definition.greet(addr_b.with_vnode(b"gamma"), "hi gamma")
    sim.run()

    reflected = net_a.definition.counters["reflected"]
    sent = net_a.definition.counters["sent"]
    print(f"\nnet-a counters: {reflected} reflected, {sent} sent on the wire")


if __name__ == "__main__":
    main()
