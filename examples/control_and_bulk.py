"""Control-plane heartbeats next to bulk replication — the paper's story.

A service on EU-VPC replicates a 395 MB snapshot to a peer while sending
latency-sensitive heartbeats to the same peer.  The transport choice for
the *bulk* stream decides whether the heartbeats survive:

* bulk over TCP   -> heartbeats queue behind the snapshot (seconds!),
* bulk over UDT   -> heartbeats unaffected (separate channel),
* bulk over DATA  -> adaptive: near-TCP throughput, heartbeats fine.

This is Figure 8 + Figure 9 as one program.

Run:  python examples/control_and_bulk.py
"""

from repro.bench import setup_by_name
from repro.bench.harness import estimate_rate, run_latency_experiment
from repro.messaging import Transport

MB = 1024 * 1024


def main() -> None:
    import os

    quick = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
    transfer_bytes = (64 if quick else 395) * MB
    setup = setup_by_name("EU-VPC")
    print(f"{setup.name}: heartbeats every 250 ms while replicating a snapshot\n")
    print(f"{'bulk transport':15s} {'heartbeat RTT (median)':>24s} {'bulk rate (est.)':>18s}")
    baseline = run_latency_experiment(setup, Transport.TCP, None, seed=3)
    print(f"{'(no bulk)':15s} {baseline.median_ms:>21.2f} ms {'-':>18s}")
    for bulk in (Transport.TCP, Transport.UDT, Transport.DATA):
        result = run_latency_experiment(setup, Transport.TCP, bulk, seed=3, transfer_bytes=transfer_bytes)
        rate = estimate_rate(setup, bulk) / MB
        print(f"{bulk.value:15s} {result.median_ms:>21.2f} ms {rate:>15.1f} MB/s")
    print(
        "\nSharing the TCP channel queues heartbeats behind the snapshot;\n"
        "UDT and the adaptive DATA protocol keep the control plane live\n"
        "while still moving the bulk data at full speed."
    )


if __name__ == "__main__":
    main()
