"""Multi-hop forwarding with RoutingHeader (paper listing 5).

A message from Alice reaches Carol through Bob (no direct Alice-Carol
link), but Carol replies *directly* to Alice: while a Route is attached
the header's destination is the next hop, yet the source stays the
original sender.

Run:  python examples/multihop_routing.py
"""

from repro.kompics import ComponentDefinition, KompicsSystem
from repro.messaging import (
    BaseMsg,
    BasicAddress,
    BasicHeader,
    NettyNetwork,
    Network,
    Route,
    RoutingHeader,
    Transport,
)
from repro.netsim import LinkSpec, SimNetwork
from repro.sim import Simulator

MB = 1024 * 1024


class Envelope(BaseMsg):
    __slots__ = ("text",)

    def __init__(self, header, text: str) -> None:
        super().__init__(header)
        self.text = text

    def forwarded(self) -> "Envelope":
        assert isinstance(self._header, RoutingHeader)
        return Envelope(self._header.next_hop(), self.text)


class Node(ComponentDefinition):
    """Forwards routed envelopes; answers ones addressed to itself."""

    def __init__(self, address: BasicAddress) -> None:
        super().__init__()
        self.net = self.requires(Network)
        self.address = address
        self.log = []
        self.subscribe(self.net, Envelope, self.on_envelope)

    def on_envelope(self, msg: Envelope) -> None:
        header = msg.header
        if isinstance(header, RoutingHeader) and header.route and header.route.has_next():
            print(f"  [{self.address!r}] forwarding {msg.text!r} toward {header.route.final_destination!r}")
            self.trigger(msg.forwarded(), self.net)
            return
        self.log.append(msg)
        print(f"  [{self.address!r}] received {msg.text!r} from {header.source!r}")
        if not msg.text.startswith("ack"):
            # Reply DIRECTLY to the original source — no route needed.
            reply = Envelope(
                BasicHeader(self.address, header.source, Transport.TCP),
                f"ack: {msg.text}",
            )
            self.trigger(reply, self.net)


def main() -> None:
    sim = Simulator()
    fabric = SimNetwork(sim, seed=5)
    hosts = {name: fabric.add_host(name, ip) for name, ip in
             (("alice", "10.0.0.1"), ("bob", "10.0.0.2"), ("carol", "10.0.0.3"))}
    # A chain topology: alice-bob and bob-carol, but ALSO alice-carol for
    # the direct reply (the relay is a middleware-level choice here).
    fabric.connect_hosts(hosts["alice"], hosts["bob"], LinkSpec(100 * MB, 0.010))
    fabric.connect_hosts(hosts["bob"], hosts["carol"], LinkSpec(100 * MB, 0.010))
    fabric.connect_hosts(hosts["alice"], hosts["carol"], LinkSpec(100 * MB, 0.040))

    system = KompicsSystem.simulated(sim, seed=5)
    nodes = {}
    for name, host in hosts.items():
        address = BasicAddress(host.ip, 34000)
        network = system.create(NettyNetwork, address, host, name=f"net-{name}")
        node = system.create(Node, address, name=f"node-{name}")
        system.connect(network.provided(Network), node.definition.net)
        system.start(network)
        system.start(node)
        nodes[name] = node
    sim.run()

    alice, bob, carol = (nodes[n].definition for n in ("alice", "bob", "carol"))
    print("alice -> (via bob) -> carol, reply comes straight back:")
    base = BasicHeader(alice.address, carol.address, Transport.TCP)
    route = Route(alice.address, [bob.address, carol.address])
    msg = Envelope(RoutingHeader(base, route), "hello through the relay")
    alice.trigger(msg, alice.net)
    sim.run()

    assert carol.log and carol.log[0].text == "hello through the relay"
    assert alice.log and alice.log[0].text.startswith("ack")
    print("\nDone: Carol received via Bob; Alice got the ack directly.")


if __name__ == "__main__":
    main()
