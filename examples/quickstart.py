"""Quickstart: two hosts, one middleware instance each, per-message transports.

Builds a simulated 10 ms link, starts a NettyNetwork on each side, and
exchanges ping/pong probes over TCP, UDT and UDP — the per-message
transport choice that is the paper's headline feature.

Run:  python examples/quickstart.py
"""

from repro.apps import Pinger, Ponger, register_app_serializers
from repro.kompics import KompicsSystem, SimTimerComponent, Timer
from repro.messaging import BasicAddress, NettyNetwork, Network, SerializerRegistry, Transport
from repro.netsim import LinkSpec, SimNetwork
from repro.sim import Simulator

MB = 1024 * 1024


def main() -> None:
    # --- substrate: a simulator, two hosts, one link -------------------
    sim = Simulator()
    fabric = SimNetwork(sim, seed=42)
    alice_host = fabric.add_host("alice", "10.0.0.1")
    bob_host = fabric.add_host("bob", "10.0.0.2")
    fabric.connect_hosts(alice_host, bob_host, LinkSpec(bandwidth=100 * MB, delay=0.005))

    # --- one Kompics system driving both middleware instances ----------
    system = KompicsSystem.simulated(sim, seed=42)
    alice = BasicAddress(alice_host.ip, 34000)
    bob = BasicAddress(bob_host.ip, 34000)

    def registry():
        return register_app_serializers(SerializerRegistry())

    net_a = system.create(NettyNetwork, alice, alice_host, serializers=registry())
    net_b = system.create(NettyNetwork, bob, bob_host, serializers=registry())

    # --- applications: one pinger per transport, one ponger ------------
    timer = system.create(SimTimerComponent)
    ponger = system.create(Ponger, bob)
    system.connect(net_b.provided(Network), ponger.required(Network))

    pingers = {}
    for transport in (Transport.TCP, Transport.UDT, Transport.UDP):
        pinger = system.create(Pinger, alice, bob, transport=transport, interval=0.2)
        system.connect(net_a.provided(Network), pinger.required(Network))
        system.connect(timer.provided(Timer), pinger.required(Timer))
        pingers[transport] = pinger

    for component in (net_a, net_b, timer, ponger, *pingers.values()):
        system.start(component)

    # --- run five simulated seconds ------------------------------------
    sim.run_until(5.0)

    print("Ping RTTs over a simulated 10 ms link (per-message transport choice):")
    for transport, pinger in pingers.items():
        stats = pinger.definition.rtt_stats
        print(
            f"  {transport.value:4s}: {stats.count:2d} pongs, "
            f"mean RTT {stats.mean * 1000:6.2f} ms "
            f"(min {stats.min * 1000:.2f}, max {stats.max * 1000:.2f})"
        )


if __name__ == "__main__":
    main()
