"""The real-network backend: actual sockets on 127.0.0.1.

Runs two middleware instances on a thread-pool Kompics system and
exchanges messages over genuine TCP, UDP and the library's own UDT-lite
reliable-UDP transport — including a multi-packet bulk frame that
exercises UDT-lite's sequencing and pacing.

Run:  python examples/aio_loopback.py
"""

import socket
import threading
import time

from repro.aio import AioNetwork
from repro.apps import PingMsg, register_app_serializers
from repro.kompics import ComponentDefinition, KompicsSystem
from repro.messaging import (
    BasicAddress,
    BasicHeader,
    Msg,
    Network,
    SerializerRegistry,
    Transport,
)

HOST = "127.0.0.1"


def free_port() -> int:
    with socket.socket() as s:
        s.bind((HOST, 0))
        return s.getsockname()[1]


class EchoApp(ComponentDefinition):
    """Echoes pings; records everything it sees."""

    def __init__(self, address: BasicAddress) -> None:
        super().__init__()
        self.net = self.requires(Network)
        self.address = address
        self.received = []
        self.event = threading.Event()
        self.subscribe(self.net, Msg, self.on_msg)

    def on_msg(self, msg: Msg) -> None:
        self.received.append(msg)
        self.event.set()
        if isinstance(msg, PingMsg) and msg.header.destination == self.address:
            echo = PingMsg(
                BasicHeader(self.address, msg.header.source, msg.header.protocol),
                msg.seq + 1000,
                msg.sent_at,
            )
            self.trigger(echo, self.net)


def main() -> None:
    system = KompicsSystem.threaded(workers=3)
    nodes = {}
    try:
        for name in ("alice", "bob"):
            address = BasicAddress(HOST, free_port())
            network = system.create(
                AioNetwork, address,
                serializers=register_app_serializers(SerializerRegistry()),
                name=f"net-{name}",
            )
            app = system.create(EchoApp, address, name=f"app-{name}")
            system.connect(network.provided(Network), app.required(Network))
            system.start(network)
            system.start(app)
            nodes[name] = (address, app.definition)
        time.sleep(0.3)  # let the listeners bind

        alice_addr, alice = nodes["alice"]
        bob_addr, bob = nodes["bob"]

        for i, transport in enumerate((Transport.TCP, Transport.UDT, Transport.UDP)):
            t0 = time.monotonic()
            ping = PingMsg(BasicHeader(alice_addr, bob_addr, transport), seq=i, sent_at=t0)
            alice.trigger(ping, alice.net)
            while not any(isinstance(m, PingMsg) and m.seq == 1000 + i for m in alice.received):
                alice.event.wait(timeout=0.1)
                alice.event.clear()
                if time.monotonic() - t0 > 10:
                    raise TimeoutError(transport)
            rtt = (time.monotonic() - t0) * 1000
            print(f"  {transport.value:4s} echo over real loopback sockets: {rtt:6.2f} ms")

        print("\nAll three wire protocols worked — same middleware API as the simulation.")
    finally:
        system.shutdown()


if __name__ == "__main__":
    main()
